package backoff

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func fastPolicy() Policy {
	return Policy{Attempts: 4, Base: time.Millisecond, Max: 4 * time.Millisecond, Jitter: -1}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("flaky")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	calls := 0
	wantErr := errors.New("still down")
	err := Retry(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want %v", err, wantErr)
	}
	if calls != 4 {
		t.Errorf("calls = %d, want the full 4 attempts", calls)
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	calls := 0
	inner := errors.New("400 bad request")
	err := Retry(context.Background(), fastPolicy(), func(context.Context) error {
		calls++
		return Permanent(fmt.Errorf("rpc: %w", inner))
	})
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (permanent errors must not retry)", calls)
	}
	// The marker is unwrapped: callers see their own error chain.
	if IsPermanent(err) {
		t.Error("returned error still carries the Permanent marker")
	}
	if !errors.Is(err, inner) {
		t.Errorf("err = %v, want chain containing %v", err, inner)
	}
}

func TestRetryParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, fastPolicy(), func(context.Context) error {
		calls++
		cancel()
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (cancel must stop the loop)", calls)
	}
}

func TestRetryAttemptDeadline(t *testing.T) {
	p := fastPolicy()
	p.Attempts = 2
	p.AttemptTimeout = 5 * time.Millisecond
	var sawDeadline bool
	err := Retry(context.Background(), p, func(ctx context.Context) error {
		d, ok := ctx.Deadline()
		if !ok {
			t.Fatal("attempt context has no deadline")
		}
		if time.Until(d) > p.AttemptTimeout {
			t.Errorf("deadline %v further out than AttemptTimeout", time.Until(d))
		}
		<-ctx.Done() // a stalled RPC: blocks until the per-attempt deadline
		sawDeadline = true
		return ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
	if !sawDeadline {
		t.Error("attempt never observed its deadline")
	}
}

func TestWaitGrowsAndCaps(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond, Jitter: -1}
	waits := []time.Duration{p.Wait(0), p.Wait(1), p.Wait(2), p.Wait(5)}
	want := []time.Duration{10, 20, 40, 40}
	for i, w := range waits {
		if w != want[i]*time.Millisecond {
			t.Errorf("Wait(%d) = %v, want %v", i, w, want[i]*time.Millisecond)
		}
	}
}

func TestWaitJitterStaysInBand(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		w := p.Wait(0)
		if w < 50*time.Millisecond || w > 100*time.Millisecond {
			t.Fatalf("jittered wait %v outside [50ms, 100ms]", w)
		}
	}
}
