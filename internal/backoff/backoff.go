// Package backoff is the fabric's shared retry discipline: jittered
// exponential backoff with a per-attempt deadline. Every worker →
// coordinator RPC and every remote-store operation runs under a Policy,
// so one stalled or flapping network hop degrades to a bounded amount of
// extra latency instead of a failed cell.
//
// Jitter exists to de-synchronize a fleet: when a coordinator restarts,
// N workers all fail their poll in the same instant, and without jitter
// they all retry in the same instant too. Jitter is intentionally the
// only nondeterminism in the retry layer — it shifts *when* an attempt
// runs, never *what* it computes, so result bytes stay reproducible.
package backoff

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Policy describes one retry discipline. The zero value is usable and
// means "four attempts, 100ms base doubling to a 2s cap, half-width
// jitter, no per-attempt deadline".
type Policy struct {
	// Attempts is the total number of tries, including the first
	// (default 4; values below 1 mean 1 — no retries).
	Attempts int
	// Base is the wait before the second attempt; waits double from
	// there (default 100ms).
	Base time.Duration
	// Max caps the exponential growth (default 2s).
	Max time.Duration
	// Jitter is the fraction of each wait that is randomized: the actual
	// sleep is uniform in [wait·(1−Jitter), wait] (default 0.5; 0 keeps
	// the default — pass a negative value for strictly no jitter).
	Jitter float64
	// AttemptTimeout bounds each individual attempt with its own
	// context deadline (0 = none). This is what turns a stalled RPC —
	// a connection that accepts but never answers — into a retryable
	// error instead of a hung worker.
	AttemptTimeout time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.Attempts < 1 {
		if p.Attempts == 0 {
			p.Attempts = 4
		} else {
			p.Attempts = 1
		}
	}
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 2 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// permanentError marks an error the retry loop must not absorb.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Retry returns it immediately instead of
// retrying: the server answered, it just said no (4xx, validation,
// unknown campaign). Retrying a refusal only hides it.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// jitterRand is the package's own seeded source so Retry never contends
// on (or reseeds) the global one.
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func jitterFloat() float64 {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterRand.Float64()
}

// Wait returns the sleep before attempt n (0-based: Wait(0) precedes the
// first retry), jittered per the policy. Exposed for callers that manage
// their own loops (boomctl's Retry-After handling caps with it).
func (p Policy) Wait(n int) time.Duration {
	p = p.withDefaults()
	w := p.Base
	for i := 0; i < n && w < p.Max; i++ {
		w *= 2
	}
	if w > p.Max {
		w = p.Max
	}
	if p.Jitter > 0 {
		w = time.Duration(float64(w) * (1 - p.Jitter*jitterFloat()))
	}
	return w
}

// Retry runs op until it succeeds, returns a Permanent error, exhausts
// the attempt budget, or ctx is canceled. Each attempt gets its own
// child context carrying AttemptTimeout. The returned error is the last
// attempt's (unwrapped from the Permanent marker), or ctx.Err() when the
// parent context ended first.
func Retry(ctx context.Context, p Policy, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	var lastErr error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		actx := ctx
		var cancel context.CancelFunc
		if p.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		err := op(actx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		lastErr = err
		if attempt == p.Attempts-1 {
			break
		}
		t := time.NewTimer(p.Wait(attempt))
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
	return lastErr
}
