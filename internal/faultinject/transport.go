package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Transport is a fault-injecting http.RoundTripper: the network-boundary
// half of the chaos harness. Wrapped around any client the fabric or the
// remote artifact store uses, it evaluates the injector's rules at sites
// derived from the request —
//
//	fabric.poll           POST /v1/fabric/poll
//	fabric.heartbeat      POST /v1/fabric/heartbeat
//	fabric.report         POST /v1/fabric/done
//	fabric.register       POST /v1/fabric/workers
//	fabric.campaign       GET  /v1/fabric/campaigns/…
//	artifact.remote.get   GET  /v1/artifacts/…
//	artifact.remote.put   PUT  /v1/artifacts/…
//	artifact.remote.evict DELETE /v1/artifacts/…
//
// with Peer (the worker's cluster identity) appended as a second site
// segment, so one worker's RPCs are targetable deterministically
// ("fabric.report/worker-2=errorx3").
//
// Rule modes map onto the failure shapes a hostile network produces:
//
//   - error       → a synthetic 503 response (the server-5xx shape;
//     retry layers must absorb it)
//   - error-perm  → a transport-level error (connection refused/reset)
//   - delay       → a stall before the request leaves (per-attempt
//     deadlines must cut it short)
//   - corrupt     → seed-deterministic bit flips in the response body
//     (checksum verification must catch it)
//   - truncate    → the response body cut short (length checks must
//     catch it)
//   - panic       → propagates (exercises worker panic isolation)
//
// A Transport with a nil Injector is a transparent pass-through.
type Transport struct {
	// Injector supplies the rule plan. Nil disables every site.
	Injector *Injector
	// Base performs the real round trips (nil = http.DefaultTransport).
	Base http.RoundTripper
	// Peer, when set, is appended to every site path — conventionally
	// the worker ID, making per-worker chaos rules addressable.
	Peer string
}

// rpcSite maps a request to its chaos-site path.
func rpcSite(req *http.Request) string {
	p := req.URL.Path
	switch {
	case strings.HasPrefix(p, "/v1/artifacts/"):
		switch req.Method {
		case http.MethodPut:
			return "artifact.remote.put"
		case http.MethodDelete:
			return "artifact.remote.evict"
		default:
			return "artifact.remote.get"
		}
	case strings.HasPrefix(p, "/v1/fabric/poll"):
		return "fabric.poll"
	case strings.HasPrefix(p, "/v1/fabric/heartbeat"):
		return "fabric.heartbeat"
	case strings.HasPrefix(p, "/v1/fabric/done"):
		return "fabric.report"
	case strings.HasPrefix(p, "/v1/fabric/workers"):
		return "fabric.register"
	case strings.HasPrefix(p, "/v1/fabric/campaigns"):
		return "fabric.campaign"
	}
	return "net.rpc"
}

// RoundTrip evaluates the site's rules, then (unless a fault replaced the
// round trip) forwards to the base transport and applies any response-body
// transforms.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if t.Injector == nil {
		return base.RoundTrip(req)
	}
	parts := []string{rpcSite(req)}
	if t.Peer != "" {
		parts = append(parts, t.Peer)
	}
	if err := t.Injector.Hit(parts...); err != nil {
		f := err.(*Fault)
		if f.Mode == ModeErrorPerm {
			// The connection-level shape: the dial failed, the peer reset.
			return nil, fmt.Errorf("faultinject: injected transport error at %s (rule %q)", f.Site, f.Rule)
		}
		// The server-5xx shape: a well-formed refusal the retry/backoff
		// layers are expected to absorb.
		body := io.NopCloser(strings.NewReader(f.Error() + "\n"))
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:       body,
			Request:    req,
		}, nil
	}
	resp, err := base.RoundTrip(req)
	if err != nil || resp.Body == nil || !t.Injector.Transforms(parts...) {
		return resp, err
	}
	// A transform rule targets this site: buffer the body so corrupt /
	// truncate can mangle it deterministically. Payloads here are bounded
	// (entries and RPC bodies are length-capped upstream), so the copy is
	// acceptable for a chaos path.
	raw, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	raw = t.Injector.Corrupt(raw, parts...)
	raw = t.Injector.Truncate(raw, parts...)
	resp.Body = io.NopCloser(bytes.NewReader(raw))
	resp.ContentLength = int64(len(raw))
	resp.Header.Del("Content-Length")
	return resp, nil
}
