package faultinject

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func mustParse(t *testing.T, spec string) *Injector {
	t.Helper()
	in, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"no-seed-separator",
		"x:site=error",           // non-numeric seed
		"1:siteonly",             // no '='
		"1:=error",               // empty site
		"1:s=weird",              // unknown mode
		"1:s=error:arg",          // argless mode with argument
		"1:s=delay:notaduration", // bad delay
		"1:s=corrupt:0",          // bad bit count
		"1:s=error#-1",           // bad skip
		"1:s=errorx0",            // bad times
		"1:a=error,b=",           // trailing bad rule
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) = nil error, want failure", spec)
		}
	}
	if in, err := Parse(""); err != nil || in != nil {
		t.Errorf("Parse(\"\") = %v, %v; want nil, nil", in, err)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Hit("boom.tick", "sha"); err != nil {
		t.Fatal(err)
	}
	data := []byte{1, 2, 3}
	if got := in.Corrupt(data, "artifact.read"); !bytes.Equal(got, data) {
		t.Fatal("nil Corrupt mutated data")
	}
	if in.Seed() != 0 {
		t.Fatal("nil Seed not zero")
	}
}

func TestHitMatchingAndBudget(t *testing.T) {
	// Prefix match, glob segment, skip and times budgets.
	in := mustParse(t, "7:core.measure/sha/*=error#1x2")
	var faults int
	for i := 0; i < 6; i++ {
		if err := in.Hit("core.measure", "sha", "MegaBOOM"); err != nil {
			faults++
			var f *Fault
			if !errors.As(err, &f) {
				t.Fatalf("hit %d: %T is not *Fault", i, err)
			}
			if !f.Transient() {
				t.Error("error mode must be transient")
			}
			if f.Site != "core.measure/sha/MegaBOOM" {
				t.Errorf("fault site %q", f.Site)
			}
		}
	}
	if faults != 2 {
		t.Errorf("skip=1 times=2: got %d faults over 6 hits, want 2", faults)
	}
	// Non-matching sites never fire.
	if err := in.Hit("core.measure", "fft", "MegaBOOM"); err != nil {
		t.Errorf("non-matching workload fired: %v", err)
	}
	if err := in.Hit("core.profile", "sha"); err != nil {
		t.Errorf("non-matching base site fired: %v", err)
	}
}

func TestPrefixMatch(t *testing.T) {
	in := mustParse(t, "1:boom.tick=error-perm")
	err := in.Hit("boom.tick", "qsort", "LargeBOOM")
	if err == nil {
		t.Fatal("prefix rule did not fire on deeper site")
	}
	var f *Fault
	if !errors.As(err, &f) || f.Transient() {
		t.Fatalf("error-perm must be a permanent *Fault, got %v", err)
	}
}

func TestPanicMode(t *testing.T) {
	in := mustParse(t, "1:boom.tick/sha=panic")
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("panic rule did not panic")
		}
		f, ok := p.(*Fault)
		if !ok || f.Mode != ModePanic {
			t.Fatalf("panic value %v (%T), want *Fault{ModePanic}", p, p)
		}
	}()
	in.Hit("boom.tick", "sha")
}

func TestDelayMode(t *testing.T) {
	in := mustParse(t, "1:s=delay:30ms")
	t0 := time.Now()
	if err := in.Hit("s"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 25*time.Millisecond {
		t.Errorf("delay slept %v, want ≈30ms", d)
	}
	// Budget exhausted: second hit is free.
	t0 = time.Now()
	in.Hit("s")
	if d := time.Since(t0); d > 20*time.Millisecond {
		t.Errorf("exhausted delay rule still slept %v", d)
	}
}

func TestCorruptDeterministic(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 256)
	a := mustParse(t, "42:artifact.read/measure=corrupt:3").Corrupt(payload, "artifact.read", "measure")
	b := mustParse(t, "42:artifact.read/measure=corrupt:3").Corrupt(payload, "artifact.read", "measure")
	c := mustParse(t, "43:artifact.read/measure=corrupt:3").Corrupt(payload, "artifact.read", "measure")
	if bytes.Equal(a, payload) {
		t.Fatal("corrupt did not flip any bits")
	}
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different corruption")
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical corruption")
	}
	// Exactly 3 bit flips.
	flips := 0
	for i := range a {
		for bit := 0; bit < 8; bit++ {
			if (a[i]^payload[i])&(1<<bit) != 0 {
				flips++
			}
		}
	}
	if flips != 3 {
		t.Errorf("flipped %d bits, want 3", flips)
	}
	// The original slice is never mutated in place.
	if !bytes.Equal(payload, bytes.Repeat([]byte{0xAB}, 256)) {
		t.Fatal("Corrupt mutated its input")
	}
	// Hit never fires corrupt rules.
	if err := mustParse(t, "42:artifact.read=corrupt").Hit("artifact.read", "measure"); err != nil {
		t.Errorf("Hit fired a corrupt rule: %v", err)
	}
}

func TestConcurrentHitsRespectBudget(t *testing.T) {
	in := mustParse(t, "1:site=errorx10")
	var wg sync.WaitGroup
	faults := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if in.Hit("site", "x") != nil {
					faults[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range faults {
		total += n
	}
	if total != 10 {
		t.Errorf("concurrent hits fired %d times, want exactly 10", total)
	}
}
