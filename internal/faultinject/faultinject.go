// Package faultinject is a deterministic fault-injection harness for the
// SimPoint pipeline. Production code declares named sites — points where a
// fault could plausibly occur (a detailed-model tick, an artifact read, the
// start of a measurement) — and an Injector, parsed from a seeded spec,
// decides at each site whether to do nothing (the overwhelmingly common
// case), return an error, panic, sleep, or corrupt a payload.
//
// Sites are hierarchical, "/"-separated paths that embed the identity of
// the work in flight, e.g.
//
//	boom.tick/sha/MegaBOOM
//	core.measure/dijkstra/MediumBOOM
//	artifact.read/measure
//	artifact.fetch/checkpoint         (remote-store fetch, internal/artifact)
//	fabric.lease/worker-1             (cell lease grant, internal/fabric)
//	fabric.report/worker-1            (done-report RPC; see Transport)
//	artifact.remote.get/worker-1      (remote-store GET over the wire)
//	fabric.payload/worker-1           (measure bytes as reported, worker-side)
//
// Because a site names the exact (workload, config) pair it fires in, a
// rule that targets one pair is deterministic regardless of sweep
// parallelism: no other task ever matches it, and hit ordering within one
// task is the model's own deterministic execution order.
//
// Spec grammar (the -chaos flag accepts "SEED:SPEC"):
//
//	SPEC  := RULE ("," RULE)*
//	RULE  := SITE "=" MODE [":" ARG] ["#" SKIP] ["x" TIMES]
//	SITE  := segment ("/" segment)* — each segment is a path.Match pattern;
//	         a rule with fewer segments than the site is a prefix match,
//	         so "boom.tick" matches "boom.tick/sha/MegaBOOM".
//	MODE  := "panic" | "error" (transient) | "error-perm" | "delay" |
//	         "corrupt" | "truncate"
//	ARG   := delay duration ("50ms"), corrupt bit-flip count ("3"), or
//	         truncate keep-bytes ("100"; omitted = seed-deterministic cut)
//	SKIP  := matching hits to let pass before firing (default 0)
//	TIMES := matching hits that fire after the skip (default 1; "x*" = all)
//
// Examples:
//
//	boom.tick/sha/MegaBOOM=panic          panic mid-measurement of one pair
//	core.measure/fft/*=error              one transient error per fft config
//	core.measure/qsort/LargeBOOM=error-perm   a deterministic model fault
//	artifact.read/measure=corrupt:3       flip 3 bits in the next payload read
//	core.profile/dijkstra=delay:50ms#1x2  sleep on the 2nd and 3rd hits
//
// The seed drives payload corruption (which bits flip) so chaos runs are
// reproducible bit for bit. Injection bookkeeping is atomic; an Injector is
// safe for concurrent use and a nil *Injector is inert, so call sites need
// no guards.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"path"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Mode is the kind of fault a rule injects.
type Mode uint8

const (
	// ModePanic panics with a *Fault at the site (exercises panic isolation).
	ModePanic Mode = iota + 1
	// ModeError returns a transient *Fault (self-heals under retry policies).
	ModeError
	// ModeErrorPerm returns a permanent *Fault (deterministic model fault).
	ModeErrorPerm
	// ModeDelay sleeps at the site (exercises deadline watchdogs).
	ModeDelay
	// ModeCorrupt flips payload bits at Corrupt sites (exercises checksum
	// recovery paths).
	ModeCorrupt
	// ModeTruncate cuts a payload short at Truncate sites (exercises
	// length-check and torn-response recovery paths).
	ModeTruncate
)

func (m Mode) String() string {
	switch m {
	case ModePanic:
		return "panic"
	case ModeError:
		return "error"
	case ModeErrorPerm:
		return "error-perm"
	case ModeDelay:
		return "delay"
	case ModeCorrupt:
		return "corrupt"
	case ModeTruncate:
		return "truncate"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Fault is the error (or panic value) an Injector produces. It records the
// site and rule that fired so failures are attributable in logs and tests.
type Fault struct {
	Site string
	Rule string
	Mode Mode
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: %s injected at %s (rule %q)", f.Mode, f.Site, f.Rule)
}

// Transient reports whether the fault is retryable; this is the method the
// core error taxonomy looks for.
func (f *Fault) Transient() bool { return f.Mode == ModeError }

// rule is one parsed RULE with its atomic matching-hit counter.
type rule struct {
	raw   string
	segs  []string
	mode  Mode
	delay time.Duration
	bits  int
	keep  int // truncate: bytes to keep (-1 = seed-deterministic)
	skip  int64
	times int64 // -1 = unlimited
	hits  atomic.Int64
}

// fires consumes one matching hit and reports whether the rule triggers.
func (r *rule) fires() bool {
	n := r.hits.Add(1)
	if n <= r.skip {
		return false
	}
	return r.times < 0 || n <= r.skip+r.times
}

// match reports whether the rule's pattern covers the site path. A pattern
// with fewer segments is a prefix match; every present segment must
// path.Match its counterpart.
func (r *rule) match(site []string) bool {
	if len(r.segs) > len(site) {
		return false
	}
	for i, pat := range r.segs {
		ok, err := path.Match(pat, site[i])
		if err != nil || !ok {
			return false
		}
	}
	return true
}

// Injector evaluates a parsed fault plan at named sites. The zero value and
// the nil pointer are inert.
type Injector struct {
	seed  uint64
	rules []*rule
	reg   *metrics.Registry
}

// Parse builds an Injector from "SEED:SPEC" (see the package comment for
// the grammar). An empty string yields a nil, inert Injector.
func Parse(s string) (*Injector, error) {
	if s == "" {
		return nil, nil
	}
	head, spec, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("faultinject: spec %q: want SEED:SPEC", s)
	}
	seed, err := strconv.ParseUint(head, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("faultinject: seed %q: %v", head, err)
	}
	in := &Injector{seed: seed}
	for _, rs := range strings.Split(spec, ",") {
		r, err := parseRule(strings.TrimSpace(rs))
		if err != nil {
			return nil, err
		}
		in.rules = append(in.rules, r)
	}
	return in, nil
}

func parseRule(s string) (*rule, error) {
	site, rest, ok := strings.Cut(s, "=")
	if !ok || site == "" {
		return nil, fmt.Errorf("faultinject: rule %q: want SITE=MODE[:ARG][#SKIP][xTIMES]", s)
	}
	r := &rule{raw: s, segs: strings.Split(site, "/"), times: 1, bits: 1}
	if i := strings.LastIndexByte(rest, 'x'); i >= 0 && i > strings.LastIndexByte(rest, '#') {
		t := rest[i+1:]
		rest = rest[:i]
		if t == "*" {
			r.times = -1
		} else {
			n, err := strconv.ParseInt(t, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faultinject: rule %q: bad times %q", s, t)
			}
			r.times = n
		}
	}
	if i := strings.LastIndexByte(rest, '#'); i >= 0 {
		n, err := strconv.ParseInt(rest[i+1:], 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("faultinject: rule %q: bad skip %q", s, rest[i+1:])
		}
		r.skip = n
		rest = rest[:i]
	}
	mode, arg, _ := strings.Cut(rest, ":")
	switch mode {
	case "panic":
		r.mode = ModePanic
	case "error":
		r.mode = ModeError
	case "error-perm":
		r.mode = ModeErrorPerm
	case "delay":
		r.mode = ModeDelay
		r.delay = 10 * time.Millisecond
		if arg != "" {
			d, err := time.ParseDuration(arg)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faultinject: rule %q: bad delay %q", s, arg)
			}
			r.delay = d
		}
		return r, nil
	case "corrupt":
		r.mode = ModeCorrupt
		if arg != "" {
			n, err := strconv.Atoi(arg)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faultinject: rule %q: bad bit count %q", s, arg)
			}
			r.bits = n
		}
		return r, nil
	case "truncate":
		r.mode = ModeTruncate
		r.keep = -1 // seed-deterministic cut point
		if arg != "" {
			n, err := strconv.Atoi(arg)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faultinject: rule %q: bad keep count %q", s, arg)
			}
			r.keep = n
		}
		return r, nil
	default:
		return nil, fmt.Errorf("faultinject: rule %q: unknown mode %q", s, mode)
	}
	if arg != "" {
		return nil, fmt.Errorf("faultinject: rule %q: mode %q takes no argument", s, mode)
	}
	return r, nil
}

// SetMetrics attaches a registry counting injections per mode
// ("faultinject.panic", "faultinject.error", ...). Nil disables counting.
func (in *Injector) SetMetrics(reg *metrics.Registry) {
	if in != nil {
		in.reg = reg
	}
}

// Seed returns the plan's seed (diagnostics).
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

func (in *Injector) count(m Mode) {
	if in.reg != nil {
		in.reg.Counter("faultinject." + m.String()).Inc()
	}
}

// Hit evaluates the error/panic/delay rules at a site built from the given
// path segments. It returns a *Fault to inject, panics with one (ModePanic),
// sleeps and returns nil (ModeDelay), or returns nil when no rule fires.
// Corrupt and truncate rules never fire here — they are payload transforms
// (see Corrupt and Truncate).
func (in *Injector) Hit(parts ...string) error {
	if in == nil {
		return nil
	}
	for _, r := range in.rules {
		if r.mode == ModeCorrupt || r.mode == ModeTruncate || !r.match(parts) || !r.fires() {
			continue
		}
		site := strings.Join(parts, "/")
		in.count(r.mode)
		switch r.mode {
		case ModePanic:
			panic(&Fault{Site: site, Rule: r.raw, Mode: ModePanic})
		case ModeDelay:
			time.Sleep(r.delay)
		default:
			return &Fault{Site: site, Rule: r.raw, Mode: r.mode}
		}
	}
	return nil
}

// Corrupt evaluates the corrupt rules at a site. When one fires it returns
// a copy of data with the rule's number of bit flips at seed-deterministic
// positions; otherwise it returns data unchanged. Empty payloads pass
// through untouched.
func (in *Injector) Corrupt(data []byte, parts ...string) []byte {
	if in == nil || len(data) == 0 {
		return data
	}
	for _, r := range in.rules {
		if r.mode != ModeCorrupt || !r.match(parts) || !r.fires() {
			continue
		}
		in.count(ModeCorrupt)
		h := fnv.New64a()
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{'/'})
		}
		state := in.seed ^ h.Sum64() ^ uint64(r.hits.Load())
		out := append([]byte(nil), data...)
		for i := 0; i < r.bits; i++ {
			state = splitmix64(state)
			bit := state % uint64(len(out)*8)
			out[bit/8] ^= 1 << (bit % 8)
		}
		return out
	}
	return data
}

// Truncate evaluates the truncate rules at a site. When one fires it
// returns a prefix of data — the rule's keep count, or a
// seed-deterministic cut point when the rule gave none — modeling a
// connection torn mid-body. Otherwise data passes through unchanged.
func (in *Injector) Truncate(data []byte, parts ...string) []byte {
	if in == nil || len(data) == 0 {
		return data
	}
	for _, r := range in.rules {
		if r.mode != ModeTruncate || !r.match(parts) || !r.fires() {
			continue
		}
		in.count(ModeTruncate)
		keep := r.keep
		if keep < 0 {
			h := fnv.New64a()
			for _, p := range parts {
				h.Write([]byte(p))
				h.Write([]byte{'/'})
			}
			keep = int(splitmix64(in.seed^h.Sum64()^uint64(r.hits.Load())) % uint64(len(data)))
		}
		if keep >= len(data) {
			keep = len(data) - 1
		}
		return data[:keep]
	}
	return data
}

// Transforms reports whether any corrupt or truncate rule could ever fire
// at the site — without consuming a hit. Callers that must buffer a
// payload to transform it (the network Transport buffering a response
// body) use this to skip the copy on the sites no rule targets.
func (in *Injector) Transforms(parts ...string) bool {
	if in == nil {
		return false
	}
	for _, r := range in.rules {
		if (r.mode == ModeCorrupt || r.mode == ModeTruncate) && r.match(parts) {
			return true
		}
	}
	return false
}

// splitmix64 is the standard 64-bit mixing step (public-domain constant
// schedule) — a tiny, seedable PRNG with no shared state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
