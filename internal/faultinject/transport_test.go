package faultinject

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func mustParseTr(t *testing.T, spec string) *Injector {
	t.Helper()
	in, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// chaosGet performs one GET through a Transport wrapping ts.
func chaosGet(t *testing.T, ts *httptest.Server, in *Injector, peer, path string) (*http.Response, []byte, error) {
	t.Helper()
	hc := &http.Client{Transport: &Transport{Injector: in, Base: ts.Client().Transport, Peer: peer}}
	resp, err := hc.Get(ts.URL + path)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp, nil, err
	}
	return resp, b, nil
}

func TestTransportSyntheticServerError(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	in := mustParseTr(t, "7:fabric.poll/worker-1=error")
	resp, body, err := chaosGet(t, ts, in, "worker-1", "/v1/fabric/poll")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "fabric.poll/worker-1") {
		t.Errorf("503 body %q does not name the site", body)
	}
	if hits != 0 {
		t.Errorf("server saw %d requests; the 503 must be synthesized client-side", hits)
	}

	// The rule fired its one time: the next poll goes through.
	resp, body, err = chaosGet(t, ts, in, "worker-1", "/v1/fabric/poll")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || string(body) != "ok" {
		t.Errorf("post-fault poll: status %d body %q", resp.StatusCode, body)
	}
	if hits != 1 {
		t.Errorf("server saw %d requests, want 1", hits)
	}
}

func TestTransportPeerScoping(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	in := mustParseTr(t, "7:fabric.report/worker-2=errorx*")
	// worker-1 is untouched by a worker-2 rule.
	resp, _, err := chaosGet(t, ts, in, "worker-1", "/v1/fabric/done")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("worker-1 report: status %d, want 200", resp.StatusCode)
	}
	resp, _, err = chaosGet(t, ts, in, "worker-2", "/v1/fabric/done")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("worker-2 report: status %d, want 503", resp.StatusCode)
	}
}

func TestTransportTransportLevelError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	in := mustParseTr(t, "7:artifact.remote.put=error-perm")
	hc := &http.Client{Transport: &Transport{Injector: in, Base: ts.Client().Transport}}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/artifacts/measure/v1/00", bytes.NewReader([]byte("x")))
	if _, err := hc.Do(req); err == nil {
		t.Fatal("error-perm must surface as a transport error")
	}
}

func TestTransportCorruptsResponseBody(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAA}, 64)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer ts.Close()

	in := mustParseTr(t, "9:artifact.remote.get=corrupt:3")
	_, got, err := chaosGet(t, ts, in, "", "/v1/artifacts/measure/v1/00")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("corrupt changed length: %d vs %d", len(got), len(payload))
	}
	flipped := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^payload[i])&(1<<b) != 0 {
				flipped++
			}
		}
	}
	if flipped != 3 {
		t.Errorf("flipped %d bits, want exactly 3", flipped)
	}

	// Same seed, same site, fresh injector: byte-identical corruption.
	in2 := mustParseTr(t, "9:artifact.remote.get=corrupt:3")
	_, got2, err := chaosGet(t, ts, in2, "", "/v1/artifacts/measure/v1/00")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, got2) {
		t.Error("corruption is not deterministic across injectors with one seed")
	}
}

func TestTransportTruncatesResponseBody(t *testing.T) {
	payload := bytes.Repeat([]byte{0x55}, 128)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer ts.Close()

	in := mustParseTr(t, "9:artifact.remote.get=truncate:10")
	_, got, err := chaosGet(t, ts, in, "", "/v1/artifacts/measure/v1/00")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Errorf("truncated body %d bytes, want 10", len(got))
	}
	if !bytes.Equal(got, payload[:10]) {
		t.Error("truncate must keep a prefix, not rewrite bytes")
	}
}

func TestTransportDelayStalls(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	in := mustParseTr(t, "7:fabric.heartbeat=delay:50ms")
	t0 := time.Now()
	resp, _, err := chaosGet(t, ts, in, "", "/v1/fabric/heartbeat")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d, want 200 (delay passes the request through)", resp.StatusCode)
	}
	if d := time.Since(t0); d < 50*time.Millisecond {
		t.Errorf("round trip took %v, want ≥ the injected 50ms stall", d)
	}
}

func TestTransportNilInjectorPassesThrough(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	resp, body, err := chaosGet(t, ts, nil, "worker-1", "/v1/fabric/poll")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || string(body) != "ok" {
		t.Errorf("pass-through: status %d body %q", resp.StatusCode, body)
	}
}

func TestTruncateSpecParsing(t *testing.T) {
	if _, err := Parse("1:a=truncate:-3"); err == nil {
		t.Error("negative keep count must be rejected")
	}
	if _, err := Parse("1:a=truncate:xyz"); err == nil {
		t.Error("non-numeric keep count must be rejected")
	}
	in := mustParseTr(t, "1:a=truncate")
	out := in.Truncate(bytes.Repeat([]byte{1}, 100), "a")
	if len(out) >= 100 {
		t.Errorf("argless truncate kept %d of 100 bytes", len(out))
	}
}
