package fabric

// White-box test of the response-encode failure accounting: a value the
// JSON encoder rejects must increment fabric.http_encode_errors on every
// occurrence but log only once (the counter carries the rate, the first
// log line the cause). Before the fix these failures were discarded
// (`_ = json.NewEncoder(w).Encode(v)`), leaving a half-written
// coordinator response indistinguishable from a healthy one.

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/metrics"
)

func TestEncodeErrorsCountedAndLoggedOnce(t *testing.T) {
	reg := metrics.NewRegistry()
	var logged atomic.Int32
	c := NewCoordinator(Config{
		Registry: reg,
		Log: func(format string, args ...interface{}) {
			if strings.Contains(format, "encode") {
				logged.Add(1)
			}
		},
	})

	ctr := reg.Counter("fabric.http_encode_errors")
	for i := 1; i <= 3; i++ {
		c.writeJSON(httptest.NewRecorder(), math.NaN()) // json: unsupported value
		if got := ctr.Value(); got != int64(i) {
			t.Fatalf("after %d failures counter = %d", i, got)
		}
	}
	c.httpError(failingWriter{httptest.NewRecorder()}, 500, "boom")
	if got := ctr.Value(); got != 4 {
		t.Fatalf("httpError encode failure not counted: %d", got)
	}
	if got := logged.Load(); got != 1 {
		t.Fatalf("encode failure logged %d times, want exactly once", got)
	}

	// A healthy encode must not count.
	c.writeJSON(httptest.NewRecorder(), map[string]string{"ok": "yes"})
	if got := ctr.Value(); got != 4 {
		t.Fatalf("successful encode bumped the counter: %d", got)
	}
}

// failingWriter simulates the peer hanging up mid-write: every body write
// fails, which is the realistic shape of an encode error (as opposed to
// the unencodable-value shape above).
type failingWriter struct{ *httptest.ResponseRecorder }

func (failingWriter) Write([]byte) (int, error) {
	return 0, errBrokenPipe
}

var errBrokenPipe = &brokenPipeError{}

type brokenPipeError struct{}

func (*brokenPipeError) Error() string { return "write: broken pipe" }
