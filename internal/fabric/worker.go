package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// WorkerConfig carries one worker's knobs; only Coordinator is required.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL ("host:port" is promoted
	// to "http://host:port").
	Coordinator string
	// ID names the worker in leases, logs, and status ("worker-<pid>" when
	// empty). IDs must be unique per cluster.
	ID string
	// CacheDir is the worker's local artifact cache (a temp dir when
	// empty). With the coordinator serving a remote store, this is the
	// read-through first tier over it.
	CacheDir string
	// Registry collects the worker's pipeline + fabric metrics.
	Registry *metrics.Registry
	// Injector arms the worker-side chaos sites (artifact.fetch, the core
	// pipeline sites).
	Injector *faultinject.Injector
	// HTTPClient overrides the default client (tests).
	HTTPClient *http.Client
	// Log receives one line per lifecycle event (nil = silent).
	Log func(format string, args ...interface{})
	// TaskHook, when set, observes each granted task before execution
	// (tests use it to kill a worker mid-campaign deterministically).
	TaskHook func(Task)
}

// Worker is the execution side of the fabric: it registers with a
// coordinator, polls for cells, runs them with an ordinary core.Runner
// (local cache over the cluster's remote artifact store), and reports
// canonical result bytes back. Create with NewWorker, drive with Run.
type Worker struct {
	cfg  WorkerConfig
	base string
	hc   *http.Client

	leaseMS int64
	pollMS  int64
	store   bool

	mu      sync.Mutex
	runners map[string]*core.Runner    // per-campaign, keyed by fingerprint
	camps   map[string]core.Campaign   // decoded campaign specs, same keys
	frags   map[string]*fragmentWriter // per-campaign journal fragments
}

// NewWorker validates the config and fills defaults.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("fabric: worker needs a coordinator address")
	}
	base := strings.TrimRight(cfg.Coordinator, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if cfg.ID == "" {
		cfg.ID = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if cfg.CacheDir == "" {
		dir, err := os.MkdirTemp("", "boom-worker-*")
		if err != nil {
			return nil, fmt.Errorf("fabric: worker cache dir: %w", err)
		}
		cfg.CacheDir = dir
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 60 * time.Second}
	}
	return &Worker{cfg: cfg, base: base, hc: hc, runners: map[string]*core.Runner{}}, nil
}

// ID returns the worker's cluster identity.
func (w *Worker) ID() string { return w.cfg.ID }

func (w *Worker) logf(format string, args ...interface{}) {
	if w.cfg.Log != nil {
		w.cfg.Log(format, args...)
	}
}

func (w *Worker) count(name string) {
	if w.cfg.Registry != nil {
		w.cfg.Registry.Counter(name).Inc()
	}
}

// post sends one JSON round trip to a coordinator endpoint.
func (w *Worker) post(ctx context.Context, path string, body, reply interface{}) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("fabric: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(raw)))
	}
	if reply != nil {
		return json.Unmarshal(raw, reply)
	}
	return nil
}

// Run is the worker's main loop: register (with retry — the coordinator
// may come up after the worker), then poll/execute/report until ctx is
// canceled. Run only returns ctx.Err(); transient coordinator errors are
// absorbed by backoff.
func (w *Worker) Run(ctx context.Context) error {
	defer func() {
		w.mu.Lock()
		defer w.mu.Unlock()
		for _, f := range w.frags {
			f.Close()
		}
	}()
	if err := w.register(ctx); err != nil {
		return err
	}
	w.logf("worker %s: registered with %s (lease %dms, store=%v)",
		w.cfg.ID, w.base, w.leaseMS, w.store)
	idle := time.Duration(w.pollMS) * time.Millisecond
	if idle <= 0 {
		idle = 250 * time.Millisecond
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var pr pollResponse
		if err := w.post(ctx, "/v1/fabric/poll", pollRequest{Worker: w.cfg.ID}, &pr); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.count("fabric.poll_errors")
			if !sleepCtx(ctx, idle) {
				return ctx.Err()
			}
			continue
		}
		if pr.Task == nil {
			wait := idle
			if pr.WaitMS > 0 {
				wait = time.Duration(pr.WaitMS) * time.Millisecond
			}
			if !sleepCtx(ctx, wait) {
				return ctx.Err()
			}
			continue
		}
		w.execute(ctx, *pr.Task)
	}
}

func (w *Worker) register(ctx context.Context) error {
	for attempt := 0; ; attempt++ {
		var rr registerResponse
		err := w.post(ctx, "/v1/fabric/workers", registerRequest{Worker: w.cfg.ID}, &rr)
		if err == nil {
			w.leaseMS, w.pollMS, w.store = rr.LeaseMS, rr.PollMS, rr.Store
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempt >= 20 {
			return fmt.Errorf("fabric: worker %s could not register with %s: %w", w.cfg.ID, w.base, err)
		}
		if !sleepCtx(ctx, 250*time.Millisecond) {
			return ctx.Err()
		}
	}
}

// execute runs one leased cell end to end: hook, heartbeat loop, task
// body, done report. A lost lease (stolen while we ran) abandons the cell
// without reporting — the thief's bytes are identical anyway.
func (w *Worker) execute(ctx context.Context, t Task) {
	if w.cfg.TaskHook != nil {
		w.cfg.TaskHook(t)
	}
	if ctx.Err() != nil {
		return // killed between grant and execution: lease expires, cell is stolen
	}
	tctx, cancel := context.WithCancel(ctx)
	defer cancel()

	lease := time.Duration(w.leaseMS) * time.Millisecond
	if lease <= 0 {
		lease = 15 * time.Second
	}
	var lost bool
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		tick := time.NewTicker(lease / 3)
		defer tick.Stop()
		for {
			select {
			case <-tctx.Done():
				return
			case <-tick.C:
				var hr heartbeatResponse
				err := w.post(tctx, "/v1/fabric/heartbeat", heartbeatRequest{Worker: w.cfg.ID, Task: t}, &hr)
				if err == nil && hr.Lost {
					lost = true
					w.count("fabric.leases_lost")
					cancel() // stop burning cycles on a cell someone else owns
					return
				}
			}
		}
	}()

	payload, err := w.runTask(tctx, t)
	cancel()
	hbWG.Wait()
	if lost {
		w.logf("worker %s: lease lost on %s, abandoning", w.cfg.ID, t.Label())
		return
	}
	if ctx.Err() != nil {
		return // shutdown mid-cell: don't report, let the lease expire
	}

	if err == nil {
		// The worker's own journal fragment: if this node dies before (or
		// while) reporting, an operator can still gather the fragment and
		// MergeJournals it into the coordinator's — the cell's canonical
		// bytes are not lost with the report.
		w.fragmentFor(t.Campaign).appendCell(t.Label(), payload)
	}
	done := doneRequest{Worker: w.cfg.ID, Task: t, OK: err == nil, Payload: payload}
	if err != nil {
		done.Error = err.Error()
		w.count("fabric.cells_errored")
		w.logf("worker %s: %s failed: %v", w.cfg.ID, t.Label(), err)
	} else {
		w.count("fabric.cells_completed")
	}
	for attempt := 0; attempt < 3; attempt++ {
		var dr doneResponse
		if rerr := w.post(ctx, "/v1/fabric/done", done, &dr); rerr == nil {
			return
		}
		if !sleepCtx(ctx, 200*time.Millisecond) {
			return
		}
	}
	w.logf("worker %s: could not report %s; lease will expire", w.cfg.ID, t.Label())
}

// runTask executes one cell body, converting panics (chaos drills, model
// bugs) into reported errors so one poisoned cell never takes the worker
// down.
func (w *Worker) runTask(ctx context.Context, t Task) (payload []byte, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("fabric: panic in %s: %v", t.Label(), rec)
		}
	}()
	r, camp, err := w.runner(ctx, t.Campaign)
	if err != nil {
		return nil, err
	}
	wl, err := workloads.Build(t.Workload, camp.Scale)
	if err != nil {
		return nil, err
	}
	switch t.Kind {
	case taskProfile:
		// The product is the artifact chain itself: Profile fills the local
		// cache and — via the synchronous write-through in artifact.Cache —
		// the cluster store, so every other worker's measure cells fetch
		// this chain instead of recomputing it.
		_, err := r.Profile(ctx, wl)
		return nil, err
	case taskMeasure:
		for i := range camp.Configs {
			if camp.Configs[i].Name == t.Config {
				p, perr := r.Profile(ctx, wl) // cache/store hit: the gated profile cell ran first
				if perr != nil {
					return nil, perr
				}
				res, rerr := r.Run(ctx, p, camp.Configs[i])
				if rerr != nil {
					return nil, rerr
				}
				return core.EncodeMeasuredResult(res)
			}
		}
		return nil, fmt.Errorf("fabric: campaign has no config %q", t.Config)
	default:
		return nil, fmt.Errorf("fabric: unknown task kind %q", t.Kind)
	}
}

// runner returns (building on first use) the per-campaign Runner: the
// campaign spec is fetched from the coordinator and the Runner assembled
// exactly as a single node would, plus the remote store tier when the
// coordinator serves one.
func (w *Worker) runner(ctx context.Context, campaignID string) (*core.Runner, core.Campaign, error) {
	w.mu.Lock()
	r := w.runners[campaignID]
	w.mu.Unlock()
	if r != nil {
		camp, err := w.fetchCampaign(ctx, campaignID)
		return r, camp, err
	}
	camp, err := w.fetchCampaign(ctx, campaignID)
	if err != nil {
		return nil, core.Campaign{}, err
	}
	opts := []core.Option{
		core.WithScale(camp.Scale),
		core.WithCache(w.cfg.CacheDir),
		core.WithMetrics(w.cfg.Registry),
		core.WithFaultInjector(w.cfg.Injector),
	}
	if w.store {
		opts = append(opts, core.WithRemoteStore(artifact.NewRemote(w.base, w.hc)))
	}
	r = core.New(core.FlowConfigFor(camp.Scale), opts...)
	w.mu.Lock()
	if have := w.runners[campaignID]; have != nil {
		r = have
	} else {
		w.runners[campaignID] = r
	}
	w.mu.Unlock()
	return r, camp, nil
}

// fetchCampaign returns the decoded campaign spec, fetching it from the
// coordinator on first use (specs are immutable per fingerprint).
func (w *Worker) fetchCampaign(ctx context.Context, id string) (core.Campaign, error) {
	w.mu.Lock()
	if w.camps == nil {
		w.camps = map[string]core.Campaign{}
	}
	if c, ok := w.camps[id]; ok {
		w.mu.Unlock()
		return c, nil
	}
	w.mu.Unlock()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/v1/fabric/campaigns/"+id, nil)
	if err != nil {
		return core.Campaign{}, err
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return core.Campaign{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return core.Campaign{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return core.Campaign{}, fmt.Errorf("fabric: fetching campaign %s: %s", short(id), resp.Status)
	}
	var wire campaignWire
	if err := json.Unmarshal(raw, &wire); err != nil {
		return core.Campaign{}, fmt.Errorf("fabric: campaign %s spec: %w", short(id), err)
	}
	camp := wire.campaign()
	w.mu.Lock()
	w.camps[id] = camp
	w.mu.Unlock()
	return camp, nil
}

// fragmentFor returns (opening on first use) the worker's journal
// fragment for one campaign, under the worker's cache directory. An
// existing fragment is extended — its header already names this campaign
// because FragmentPath is campaign-scoped.
func (w *Worker) fragmentFor(campaignID string) *fragmentWriter {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.frags == nil {
		w.frags = map[string]*fragmentWriter{}
	}
	if f, ok := w.frags[campaignID]; ok {
		return f
	}
	path := FragmentPath(w.cfg.CacheDir, campaignID)
	_, statErr := os.Stat(path)
	f := openFragment(path, campaignID, statErr == nil, w.cfg.Log)
	w.frags[campaignID] = f // nil (disabled) is cached too: stays inert
	return f
}

// sleepCtx sleeps d or until ctx cancels; reports whether the full sleep
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
