package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// WorkerConfig carries one worker's knobs; only Coordinator is required.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL ("host:port" is promoted
	// to "http://host:port").
	Coordinator string
	// ID names the worker in leases, logs, and status ("worker-<pid>" when
	// empty). IDs must be unique per cluster.
	ID string
	// CacheDir is the worker's local artifact cache (a temp dir when
	// empty). With the coordinator serving a remote store, this is the
	// read-through first tier over it.
	CacheDir string
	// Registry collects the worker's pipeline + fabric metrics.
	Registry *metrics.Registry
	// Injector arms the worker-side chaos sites (artifact.fetch, the core
	// pipeline sites, and "fabric.payload/<id>" — corrupting the result
	// bytes this worker reports, the shape coordinator-side auditing
	// exists to catch).
	Injector *faultinject.Injector
	// HTTPClient overrides the default client (tests; also where a chaos
	// faultinject.Transport is attached). When nil, a client with
	// ConnectTimeout/RPCTimeout is built.
	HTTPClient *http.Client
	// ConnectTimeout bounds dialing the coordinator (default 5s). Only
	// used when HTTPClient is nil.
	ConnectTimeout time.Duration
	// RPCTimeout bounds the wait for response headers on each RPC
	// (default 60s). There is deliberately no overall client timeout — an
	// overall bound would also cap long polls and large artifact
	// transfers. Only used when HTTPClient is nil.
	RPCTimeout time.Duration
	// Log receives one line per lifecycle event (nil = silent).
	Log func(format string, args ...interface{})
	// TaskHook, when set, observes each granted task before execution
	// (tests use it to kill a worker mid-campaign deterministically).
	TaskHook func(Task)
	// Parallelism is the worker's core.WithParallelism budget (0 = all
	// cores). A fabric worker leases one cell at a time, so the budget
	// mostly drains into intra-cell point helpers (DESIGN §17) — this is
	// what keeps storeless audit re-executions, which can never hit the
	// shared store, from paying full serial latency.
	Parallelism int
	// PointParallelism caps points measured concurrently within one cell
	// (0 = share the Parallelism budget, 1 = serial).
	PointParallelism int
}

// Worker is the execution side of the fabric: it registers with a
// coordinator, polls for cells, runs them with an ordinary core.Runner
// (local cache over the cluster's remote artifact store), and reports
// canonical result bytes back. Create with NewWorker, drive with Run.
type Worker struct {
	cfg  WorkerConfig
	base string
	hc   *http.Client

	leaseMS int64
	pollMS  int64
	store   bool

	mu           sync.Mutex
	runners      map[string]*core.Runner    // per-campaign, keyed by fingerprint
	auditRunners map[string]*core.Runner    // per-campaign Fresh (storeless) runners
	camps        map[string]core.Campaign   // decoded campaign specs, same keys
	frags        map[string]*fragmentWriter // per-campaign journal fragments
}

// NewWorker validates the config and fills defaults.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("fabric: worker needs a coordinator address")
	}
	base := strings.TrimRight(cfg.Coordinator, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if cfg.ID == "" {
		cfg.ID = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if cfg.CacheDir == "" {
		dir, err := os.MkdirTemp("", "boom-worker-*")
		if err != nil {
			return nil, fmt.Errorf("fabric: worker cache dir: %w", err)
		}
		cfg.CacheDir = dir
	}
	hc := cfg.HTTPClient
	if hc == nil {
		connect := cfg.ConnectTimeout
		if connect <= 0 {
			connect = 5 * time.Second
		}
		rpc := cfg.RPCTimeout
		if rpc <= 0 {
			rpc = 60 * time.Second
		}
		hc = artifact.NewHTTPClient(connect, rpc)
	}
	return &Worker{
		cfg: cfg, base: base, hc: hc,
		runners:      map[string]*core.Runner{},
		auditRunners: map[string]*core.Runner{},
	}, nil
}

// ID returns the worker's cluster identity.
func (w *Worker) ID() string { return w.cfg.ID }

func (w *Worker) logf(format string, args ...interface{}) {
	if w.cfg.Log != nil {
		w.cfg.Log(format, args...)
	}
}

func (w *Worker) count(name string) {
	if w.cfg.Registry != nil {
		w.cfg.Registry.Counter(name).Inc()
	}
}

// rpcError is a non-2xx coordinator answer, typed so retry layers can
// separate refusals (4xx: the coordinator understood and said no) from
// server-side trouble (5xx: retry).
type rpcError struct {
	code int
	msg  string
}

func (e *rpcError) Error() string { return e.msg }

// post sends one JSON round trip to a coordinator endpoint.
func (w *Worker) post(ctx context.Context, path string, body, reply interface{}) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return &rpcError{resp.StatusCode, fmt.Sprintf("fabric: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(raw)))}
	}
	if reply != nil {
		return json.Unmarshal(raw, reply)
	}
	return nil
}

// postRetry wraps post in the worker's retry discipline: jittered
// exponential backoff with a per-attempt deadline. Transport errors, 5xx
// and stalls retry; 4xx refusals return immediately.
func (w *Worker) postRetry(ctx context.Context, p backoff.Policy, path string, body, reply interface{}) error {
	return backoff.Retry(ctx, p, func(actx context.Context) error {
		err := w.post(actx, path, body, reply)
		if err == nil {
			return nil
		}
		if re, ok := err.(*rpcError); ok && re.code/100 == 4 {
			return backoff.Permanent(err)
		}
		w.count("fabric.rpc_retries")
		return err
	})
}

// Run is the worker's main loop: register (with retry — the coordinator
// may come up after the worker), then poll/execute/report until ctx is
// canceled. Run only returns ctx.Err(); transient coordinator errors are
// absorbed by backoff.
func (w *Worker) Run(ctx context.Context) error {
	defer func() {
		w.mu.Lock()
		defer w.mu.Unlock()
		for _, f := range w.frags {
			f.Close()
		}
	}()
	if err := w.register(ctx); err != nil {
		return err
	}
	w.logf("worker %s: registered with %s (lease %dms, store=%v)",
		w.cfg.ID, w.base, w.leaseMS, w.store)
	idle := time.Duration(w.pollMS) * time.Millisecond
	if idle <= 0 {
		idle = 250 * time.Millisecond
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var pr pollResponse
		if err := w.postRetry(ctx, pollPolicy, "/v1/fabric/poll", pollRequest{Worker: w.cfg.ID}, &pr); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.count("fabric.poll_errors")
			if !sleepCtx(ctx, idle) {
				return ctx.Err()
			}
			continue
		}
		if pr.Task == nil {
			wait := idle
			if pr.WaitMS > 0 {
				wait = time.Duration(pr.WaitMS) * time.Millisecond
			}
			if !sleepCtx(ctx, wait) {
				return ctx.Err()
			}
			continue
		}
		w.execute(ctx, *pr.Task)
	}
}

// The worker's RPC retry disciplines. Poll gets one attempt per loop
// iteration (the main loop is its retry, with the coordinator's idle
// hint as the backoff); register and done-reports retry in place because
// giving up on them loses work.
var (
	pollPolicy     = backoff.Policy{Attempts: 1, AttemptTimeout: 30 * time.Second}
	registerPolicy = backoff.Policy{
		Attempts: 20, Base: 250 * time.Millisecond, Max: 2 * time.Second,
		AttemptTimeout: 10 * time.Second,
	}
	donePolicy = backoff.Policy{
		Attempts: 5, Base: 200 * time.Millisecond, Max: 2 * time.Second,
		AttemptTimeout: 10 * time.Second,
	}
)

func (w *Worker) register(ctx context.Context) error {
	var rr registerResponse
	err := w.postRetry(ctx, registerPolicy, "/v1/fabric/workers", registerRequest{Worker: w.cfg.ID}, &rr)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("fabric: worker %s could not register with %s: %w", w.cfg.ID, w.base, err)
	}
	w.leaseMS, w.pollMS, w.store = rr.LeaseMS, rr.PollMS, rr.Store
	return nil
}

// execute runs one leased cell end to end: hook, heartbeat loop, task
// body, done report. A lost lease (stolen while we ran) abandons the cell
// without reporting — the thief's bytes are identical anyway.
func (w *Worker) execute(ctx context.Context, t Task) {
	if w.cfg.TaskHook != nil {
		w.cfg.TaskHook(t)
	}
	if ctx.Err() != nil {
		return // killed between grant and execution: lease expires, cell is stolen
	}
	tctx, cancel := context.WithCancel(ctx)
	defer cancel()

	lease := time.Duration(w.leaseMS) * time.Millisecond
	if lease <= 0 {
		lease = 15 * time.Second
	}
	var lost bool
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		tick := time.NewTicker(lease / 3)
		defer tick.Stop()
		for {
			select {
			case <-tctx.Done():
				return
			case <-tick.C:
				var hr heartbeatResponse
				hbPolicy := backoff.Policy{Attempts: 2, Base: 100 * time.Millisecond, AttemptTimeout: lease / 3}
				err := w.postRetry(tctx, hbPolicy, "/v1/fabric/heartbeat", heartbeatRequest{Worker: w.cfg.ID, Task: t}, &hr)
				if err == nil && hr.Lost {
					lost = true
					w.count("fabric.leases_lost")
					cancel() // stop burning cycles on a cell someone else owns
					return
				}
			}
		}
	}()

	payload, err := w.runTask(tctx, t)
	cancel()
	hbWG.Wait()
	if lost {
		w.logf("worker %s: lease lost on %s, abandoning", w.cfg.ID, t.Label())
		return
	}
	if ctx.Err() != nil {
		return // shutdown mid-cell: don't report, let the lease expire
	}

	if err == nil && t.Kind == taskMeasure {
		// Chaos site "fabric.payload/<id>": a worker that computes
		// correctly but reports corrupted bytes — bit flips applied to the
		// canonical payload before it is journaled or reported, so the
		// wire JSON stays valid and the lie reaches the coordinator's
		// audit layer instead of dying in a decoder.
		payload = w.cfg.Injector.Corrupt(payload, "fabric.payload", w.cfg.ID)
	}
	if err == nil && !t.Fresh {
		// The worker's own journal fragment: if this node dies before (or
		// while) reporting, an operator can still gather the fragment and
		// MergeJournals it into the coordinator's — the cell's canonical
		// bytes are not lost with the report. Audit re-executions are
		// deliberately not journaled: their product is a vote, not a cell.
		w.fragmentFor(t.Campaign).appendCell(t.Label(), payload)
	}
	done := doneRequest{Worker: w.cfg.ID, Task: t, OK: err == nil, Payload: payload}
	if err != nil {
		done.Error = err.Error()
		w.count("fabric.cells_errored")
		w.logf("worker %s: %s failed: %v", w.cfg.ID, t.Label(), err)
	} else {
		w.count("fabric.cells_completed")
	}
	var dr doneResponse
	if rerr := w.postRetry(ctx, donePolicy, "/v1/fabric/done", done, &dr); rerr != nil {
		w.logf("worker %s: could not report %s; lease will expire", w.cfg.ID, t.Label())
	}
}

// runTask executes one cell body, converting panics (chaos drills, model
// bugs) into reported errors so one poisoned cell never takes the worker
// down.
func (w *Worker) runTask(ctx context.Context, t Task) (payload []byte, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("fabric: panic in %s: %v", t.Label(), rec)
		}
	}()
	r, camp, err := w.runner(ctx, t.Campaign)
	if t.Fresh {
		// Audit re-execution: derive the result independently. The fresh
		// runner has its own cache directory and no remote store tier, so
		// nothing computed by the worker under audit can leak into this
		// derivation — agreement means agreement of computations, not of
		// caches.
		r, camp, err = w.auditRunner(ctx, t.Campaign)
	}
	if err != nil {
		return nil, err
	}
	wl, err := workloads.Build(t.Workload, camp.Scale)
	if err != nil {
		return nil, err
	}
	switch t.Kind {
	case taskProfile:
		// The product is the artifact chain itself: Profile fills the local
		// cache and — via the synchronous write-through in artifact.Cache —
		// the cluster store, so every other worker's measure cells fetch
		// this chain instead of recomputing it.
		_, err := r.Profile(ctx, wl)
		return nil, err
	case taskMeasure:
		for i := range camp.Configs {
			if camp.Configs[i].Name == t.Config {
				p, perr := r.Profile(ctx, wl) // cache/store hit: the gated profile cell ran first
				if perr != nil {
					return nil, perr
				}
				res, rerr := r.Run(ctx, p, camp.Configs[i])
				if rerr != nil {
					return nil, rerr
				}
				return core.EncodeMeasuredResult(res)
			}
		}
		return nil, fmt.Errorf("fabric: campaign has no config %q", t.Config)
	default:
		return nil, fmt.Errorf("fabric: unknown task kind %q", t.Kind)
	}
}

// parOpts translates the worker's parallelism knobs into engine options,
// shared by the normal and audit runners so both shapes of execution —
// store-backed cells and storeless audit re-executions — spread a cell's
// simulation points across the same budget.
func (w *Worker) parOpts() []core.Option {
	var opts []core.Option
	if w.cfg.Parallelism > 0 {
		opts = append(opts, core.WithParallelism(w.cfg.Parallelism))
	}
	if w.cfg.PointParallelism > 0 {
		opts = append(opts, core.WithPointParallelism(w.cfg.PointParallelism))
	}
	return opts
}

// runner returns (building on first use) the per-campaign Runner: the
// campaign spec is fetched from the coordinator and the Runner assembled
// exactly as a single node would, plus the remote store tier when the
// coordinator serves one.
func (w *Worker) runner(ctx context.Context, campaignID string) (*core.Runner, core.Campaign, error) {
	w.mu.Lock()
	r := w.runners[campaignID]
	w.mu.Unlock()
	if r != nil {
		camp, err := w.fetchCampaign(ctx, campaignID)
		return r, camp, err
	}
	camp, err := w.fetchCampaign(ctx, campaignID)
	if err != nil {
		return nil, core.Campaign{}, err
	}
	opts := []core.Option{
		core.WithScale(camp.Scale),
		core.WithSampling(camp.Sampling),
		core.WithCache(w.cfg.CacheDir),
		core.WithMetrics(w.cfg.Registry),
		core.WithFaultInjector(w.cfg.Injector),
	}
	opts = append(opts, w.parOpts()...)
	if w.store {
		opts = append(opts, core.WithRemoteStore(artifact.NewRemote(w.base, w.hc)))
	}
	r = core.New(core.FlowConfigFor(camp.Scale), opts...)
	w.mu.Lock()
	if have := w.runners[campaignID]; have != nil {
		r = have
	} else {
		w.runners[campaignID] = r
	}
	w.mu.Unlock()
	return r, camp, nil
}

// auditRunner returns (building on first use) the per-campaign Fresh
// runner used for audit re-executions: same campaign, same flow, but a
// private cache directory and no remote store, so every audited cell is
// recomputed from scratch on this node.
func (w *Worker) auditRunner(ctx context.Context, campaignID string) (*core.Runner, core.Campaign, error) {
	w.mu.Lock()
	r := w.auditRunners[campaignID]
	w.mu.Unlock()
	if r != nil {
		camp, err := w.fetchCampaign(ctx, campaignID)
		return r, camp, err
	}
	camp, err := w.fetchCampaign(ctx, campaignID)
	if err != nil {
		return nil, core.Campaign{}, err
	}
	r = core.New(core.FlowConfigFor(camp.Scale), append([]core.Option{
		core.WithScale(camp.Scale),
		core.WithSampling(camp.Sampling),
		core.WithCache(filepath.Join(w.cfg.CacheDir, "audit-fresh")),
		core.WithMetrics(w.cfg.Registry),
		core.WithFaultInjector(w.cfg.Injector),
	}, w.parOpts()...)...)
	w.mu.Lock()
	if have := w.auditRunners[campaignID]; have != nil {
		r = have
	} else {
		w.auditRunners[campaignID] = r
	}
	w.mu.Unlock()
	return r, camp, nil
}

// fetchCampaign returns the decoded campaign spec, fetching it from the
// coordinator on first use (specs are immutable per fingerprint).
func (w *Worker) fetchCampaign(ctx context.Context, id string) (core.Campaign, error) {
	w.mu.Lock()
	if w.camps == nil {
		w.camps = map[string]core.Campaign{}
	}
	if c, ok := w.camps[id]; ok {
		w.mu.Unlock()
		return c, nil
	}
	w.mu.Unlock()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/v1/fabric/campaigns/"+id, nil)
	if err != nil {
		return core.Campaign{}, err
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return core.Campaign{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return core.Campaign{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return core.Campaign{}, fmt.Errorf("fabric: fetching campaign %s: %s", short(id), resp.Status)
	}
	var wire campaignWire
	if err := json.Unmarshal(raw, &wire); err != nil {
		return core.Campaign{}, fmt.Errorf("fabric: campaign %s spec: %w", short(id), err)
	}
	camp := wire.campaign()
	w.mu.Lock()
	w.camps[id] = camp
	w.mu.Unlock()
	return camp, nil
}

// fragmentFor returns (opening on first use) the worker's journal
// fragment for one campaign, under the worker's cache directory. An
// existing fragment is extended — its header already names this campaign
// because FragmentPath is campaign-scoped.
func (w *Worker) fragmentFor(campaignID string) *fragmentWriter {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.frags == nil {
		w.frags = map[string]*fragmentWriter{}
	}
	if f, ok := w.frags[campaignID]; ok {
		return f
	}
	path := FragmentPath(w.cfg.CacheDir, campaignID)
	_, statErr := os.Stat(path)
	f := openFragment(path, campaignID, statErr == nil, w.cfg.Log)
	w.frags[campaignID] = f // nil (disabled) is cached too: stays inert
	return f
}

// sleepCtx sleeps d or until ctx cancels; reports whether the full sleep
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
