package fabric

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Fabric journal fragments: the distributed analogue of the single-node
// sweep journal (internal/core). Every node — the coordinator as cells
// are reported done, each worker as it finishes cells locally — appends
// completed cells to its own per-campaign fragment file, one JSON object
// per line. Fragments are WALs in the same dialect as the sweep journal:
// a header record pins the campaign fingerprint so a fragment is never
// merged into a foreign campaign, records are flushed per line so a
// killed node loses at most the line being written, and torn trailing
// lines are skipped on read.
//
// MergeJournals is the recovery path: a restarted coordinator (or an
// operator gathering fragments off dead workers' disks) merges any number
// of fragments into one done-set. Duplicate cells across fragments —
// e.g. a cell a slow worker finished after its lease was stolen and a
// second worker finished too — resolve silently to the first occurrence:
// results are deterministic functions of the campaign fingerprint, so in
// a healthy cluster duplicates are byte-identical and the choice is
// unobservable.

// fragmentRecord is one JSONL line of a fragment.
type fragmentRecord struct {
	Ev   string `json:"ev"`             // "fabric" (header) | "cell" | "revoke"
	ID   string `json:"id,omitempty"`   // campaign fingerprint (header only)
	Task string `json:"task,omitempty"` // cell label, e.g. "measure/MegaBOOM/sha"
	// Payload carries the canonical measure bytes (base64 via
	// encoding/json); profile cells journal with no payload.
	Payload []byte `json:"payload,omitempty"`
}

// FragmentPath returns the journal fragment location for one campaign
// under a node's cache/journal directory.
func FragmentPath(dir, campaignID string) string {
	short := campaignID
	if len(short) > 12 {
		short = short[:12]
	}
	return filepath.Join(dir, "fabric-"+short+".journal")
}

// fragmentWriter is an append-only fragment WAL. Like the sweep journal,
// a write error disables the writer rather than risking a torn record
// being half-trusted later: the failure mode is "no fragment" (resume
// reruns those cells), never a plausible-but-wrong one. A nil
// *fragmentWriter is inert.
type fragmentWriter struct {
	mu       sync.Mutex
	f        *os.File
	disabled bool
	warn     func(format string, args ...interface{})
}

// openFragment opens (or creates) the fragment at path for campaignID.
// With extend=true — the caller already recovered cells from it and the
// header matched — the file is appended to; otherwise it is truncated and
// a fresh header written and fsynced. Returns nil (journaling disabled)
// on any open error.
func openFragment(path, campaignID string, extend bool, warn func(string, ...interface{})) *fragmentWriter {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		if warn != nil {
			warn("fabric journal disabled: %v", err)
		}
		return nil
	}
	flags := os.O_CREATE | os.O_WRONLY
	if extend {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		if warn != nil {
			warn("fabric journal disabled: %v", err)
		}
		return nil
	}
	w := &fragmentWriter{f: f, warn: warn}
	if !extend {
		w.append(fragmentRecord{Ev: "fabric", ID: campaignID}, true)
	}
	return w
}

func (w *fragmentWriter) appendCell(label string, payload []byte) {
	w.append(fragmentRecord{Ev: "cell", Task: label, Payload: payload}, false)
}

// revokeCell retracts an earlier cell record (a quarantined worker's
// suspect result): on merge the revoke erases every preceding record for
// the label in this fragment, so a resume reruns the cell instead of
// trusting bytes from a worker later caught lying. A re-completed cell
// appends a fresh record after the revoke and is trusted normally.
func (w *fragmentWriter) revokeCell(label string) {
	w.append(fragmentRecord{Ev: "revoke", Task: label}, true)
}

func (w *fragmentWriter) append(rec fragmentRecord, sync bool) {
	if w == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return // fragmentRecord always marshals; stay inert regardless
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.disabled {
		return
	}
	n, err := w.f.Write(line) // one write syscall per record: crash loses ≤1 line
	if err == nil && n < len(line) {
		err = io.ErrShortWrite
	}
	if err == nil && sync {
		err = w.f.Sync()
	}
	if err != nil {
		w.disabled = true
		if w.warn != nil {
			w.warn("fabric journal disabled after write error (a restart will rerun unjournaled cells): %v", err)
		}
	}
}

func (w *fragmentWriter) Close() error {
	if w == nil {
		return nil
	}
	return w.f.Close()
}

// MergeJournals merges any number of fragment files into the union of
// completed cells for campaign wantID, keyed by cell label; measure cells
// map to their canonical payload bytes, profile cells to nil (look the
// label up with the two-result comma form to distinguish "done profile"
// from "absent"). Fragments whose header names a different campaign are
// ignored whole; missing files, torn trailing lines and unparseable
// records are skipped. On a duplicate label the first occurrence — in
// path order, then file order — wins silently.
func MergeJournals(wantID string, paths ...string) map[string][]byte {
	cells := map[string][]byte{}
	for _, p := range paths {
		mergeFragment(cells, p, wantID)
	}
	return cells
}

func mergeFragment(cells map[string][]byte, path, wantID string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	first := true
	for sc.Scan() {
		var rec fragmentRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // torn write from a crash: ignore the fragment line
		}
		if first {
			if rec.Ev != "fabric" || rec.ID != wantID {
				return // foreign campaign: never merge
			}
			first = false
			continue
		}
		if rec.Ev == "revoke" && rec.Task != "" {
			delete(cells, rec.Task) // suspect result retracted by quarantine
			continue
		}
		if rec.Ev != "cell" || rec.Task == "" {
			continue
		}
		if _, dup := cells[rec.Task]; dup {
			continue // first fingerprint wins silently
		}
		cells[rec.Task] = rec.Payload
	}
}
