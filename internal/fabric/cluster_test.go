// Cross-node conformance suite: proves the distributed sweep plane is
// invisible in the results. A campaign sharded across an in-process
// cluster of coordinator + workers (real HTTP between them, real leases,
// real artifact store) must produce results byte-identical to a direct
// single-node Runner.Sweep — pinned against the same golden digests the
// single-node equivalence suite uses (testdata/equivalence_golden.txt),
// so fabric output is anchored to the exact bytes the paper's tables were
// generated from, not merely to "whatever the engine produces today".
// The identity must survive chaos: a worker killed mid-campaign, injected
// lease faults, a coordinator restart resuming from journal fragments.
package fabric_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/fabric"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/sampling"
	"repro/internal/serve"
	"repro/internal/workloads"
)

// cluster is one in-process coordinator + N workers wired over real HTTP.
type cluster struct {
	coord      *fabric.Coordinator
	coordReg   *metrics.Registry
	ts         *httptest.Server
	workerRegs []*metrics.Registry
	cancel     context.CancelFunc
	wg         sync.WaitGroup
}

type clusterOpts struct {
	workers  int
	lease    time.Duration
	resume   bool
	storeDir string  // shared across restarts; "" = fresh temp dir
	chaos    string  // coordinator-side injector spec
	audit    float64 // fabric.Config.AuditFrac
	// workerChaos[i] arms worker-i's own injector (pipeline sites plus the
	// "fabric.payload/<id>" lying-worker site); missing/empty = honest.
	workerChaos []string
	// netChaos wraps every worker's HTTP client in a faultinject.Transport.
	// Each worker parses its own injector from the spec (independent hit
	// counters) with Peer set to its ID, so both broadcast rules
	// ("fabric.report=error") and per-worker rules
	// ("artifact.remote.get/worker-1=corrupt") stay deterministic.
	netChaos string
}

func startCluster(t *testing.T, o clusterOpts) *cluster {
	t.Helper()
	if o.storeDir == "" {
		o.storeDir = t.TempDir()
	}
	var inj *faultinject.Injector
	if o.chaos != "" {
		var err error
		if inj, err = faultinject.Parse(o.chaos); err != nil {
			t.Fatal(err)
		}
	}
	c := &cluster{coordReg: metrics.NewRegistry()}
	c.coord = fabric.NewCoordinator(fabric.Config{
		Store:      artifact.Open(o.storeDir),
		Registry:   c.coordReg,
		Lease:      o.lease,
		Poll:       10 * time.Millisecond,
		Resume:     o.resume,
		JournalDir: o.storeDir,
		AuditFrac:  o.audit,
		Injector:   inj,
		Log:        t.Logf,
	})
	c.ts = httptest.NewServer(c.coord.Handler())

	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	for i := 0; i < o.workers; i++ {
		reg := metrics.NewRegistry()
		c.workerRegs = append(c.workerRegs, reg)
		id := fmt.Sprintf("worker-%d", i)
		var winj *faultinject.Injector
		if i < len(o.workerChaos) && o.workerChaos[i] != "" {
			var err error
			if winj, err = faultinject.Parse(o.workerChaos[i]); err != nil {
				t.Fatal(err)
			}
		}
		hc := c.ts.Client()
		if o.netChaos != "" {
			ninj, err := faultinject.Parse(o.netChaos)
			if err != nil {
				t.Fatal(err)
			}
			hc = &http.Client{Transport: &faultinject.Transport{
				Injector: ninj,
				Base:     c.ts.Client().Transport,
				Peer:     id,
			}}
		}
		w, err := fabric.NewWorker(fabric.WorkerConfig{
			Coordinator: c.ts.URL,
			ID:          id,
			CacheDir:    t.TempDir(),
			Registry:    reg,
			Injector:    winj,
			HTTPClient:  hc,
			Log:         t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			w.Run(ctx)
		}()
	}
	t.Cleanup(func() { c.stop() })
	return c
}

func (c *cluster) stop() {
	c.cancel()
	c.wg.Wait()
	c.ts.Close()
}

// workerCounterSum sums one counter across every worker registry.
func (c *cluster) workerCounterSum(name string) int64 {
	var n int64
	for _, reg := range c.workerRegs {
		n += reg.Counter(name).Value()
	}
	return n
}

// goldenDigests loads the repo-root equivalence golden into key→digest.
func goldenDigests(t *testing.T) map[string]string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "testdata", "equivalence_golden.txt"))
	if err != nil {
		t.Fatalf("read equivalence golden: %v", err)
	}
	out := map[string]string{}
	for _, ln := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if k, v, ok := strings.Cut(ln, " "); ok {
			out[k] = v
		}
	}
	return out
}

// checkAgainstGolden verifies every simpoint cell digest and the whole
// sweep's canonical JSON digest against the pinned golden values.
func checkAgainstGolden(t *testing.T, sw *core.Sweep) {
	t.Helper()
	golden := goldenDigests(t)
	for _, cfg := range sw.ConfigNames {
		for _, name := range sw.Names {
			res := sw.Results[cfg][name]
			if res == nil || res.Stats == nil {
				t.Errorf("missing result for %s/%s", cfg, name)
				continue
			}
			var buf bytes.Buffer
			if err := boom.EncodeStats(&buf, res.Stats); err != nil {
				t.Fatal(err)
			}
			key := fmt.Sprintf("simpoint/%s/%s", cfg, name)
			if got := fmt.Sprintf("%x", sha256.Sum256(buf.Bytes())); got != golden[key] {
				t.Errorf("%s: distributed digest %s, golden %s", key, got, golden[key])
			}
		}
	}
	enc, err := serve.EncodeSweep("equiv", workloads.ScaleTiny, sw)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%x", sha256.Sum256(enc)); got != golden["sweepjson"] {
		t.Errorf("sweepjson: distributed digest %s, golden %s", got, golden["sweepjson"])
	}
}

// directBytes runs the campaign on a plain single-node Runner and encodes
// it canonically — the reference the distributed bytes must equal.
func directBytes(t *testing.T, id string, camp core.Campaign) []byte {
	t.Helper()
	r := core.New(core.FlowConfigFor(camp.Scale), core.WithScale(camp.Scale))
	sw, err := r.Sweep(context.Background(), camp)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := serve.EncodeSweep(id, camp.Scale, sw)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestConformanceThreeWorkers is the tentpole conformance matrix: all 11
// workloads × all 3 registered configs sharded across 3 workers, merged
// result pinned to the single-node golden digests cell by cell and as
// canonical sweep JSON.
func TestConformanceThreeWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full 11×3 distributed matrix")
	}
	c := startCluster(t, clusterOpts{workers: 3})
	camp := core.NewCampaign(workloads.Names(), boom.Configs(), workloads.ScaleTiny)

	sw, err := c.coord.RunCampaign(context.Background(), "conformance-11x3", camp, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstGolden(t, sw)

	// The whole matrix really was distributed: every cell completed via
	// done-reports, and more than one worker did the work.
	if n := c.coordReg.Counter("fabric.cells_done").Value(); n != int64(11*3+11) {
		t.Errorf("cells_done %d, want %d (11 profile + 33 measure)", n, 11*3+11)
	}
	if n := c.coordReg.Counter("fabric.local_fallback").Value(); n != 0 {
		t.Errorf("local_fallback %d: the cluster must not have fallen back", n)
	}
	busy := 0
	for i := range c.workerRegs {
		if c.coordReg.Counter(fmt.Sprintf("fabric.cells_done.worker-%d", i)).Value() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d worker(s) did any cells; the matrix was not sharded", busy)
	}

	// The status endpoint sees the cluster.
	resp, err := c.ts.Client().Get(c.ts.URL + "/v1/fabric/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status fabric.StatusReply
	if err := jsonDecode(resp, &status); err != nil {
		t.Fatal(err)
	}
	if len(status.Workers) != 3 {
		t.Errorf("status lists %d workers, want 3", len(status.Workers))
	}
}

// TestConformanceSamplingSpec: a spec-bearing campaign (bbv+mav
// clustering, proportional warm-up) sharded across two workers must
// produce bytes identical to a direct single-node sweep of the same
// campaign — the campaignWire round trip and the workers' WithSampling
// runners reproduce the sampling parameters exactly, so the distributed
// plane stays invisible for non-legacy specs too.
func TestConformanceSamplingSpec(t *testing.T) {
	camp := core.NewCampaign([]string{"sha", "dijkstra"},
		[]boom.Config{boom.MediumBOOM()}, workloads.ScaleTiny)
	camp.Sampling = sampling.Recommended()
	want := directBytes(t, "sampling-2w", camp)

	c := startCluster(t, clusterOpts{workers: 2})
	sw, err := c.coord.RunCampaign(context.Background(), "sampling-2w", camp, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := serve.EncodeSweep("sampling-2w", camp.Scale, sw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, want) {
		t.Fatalf("distributed spec-bearing bytes differ from single-node:\n got %s\nwant %s", enc, want)
	}
	if !bytes.Contains(enc, []byte(`"sampling":"features=bbv+mav warmup=5x"`)) {
		t.Fatalf("merged encoding is missing the sampling field: %s", enc)
	}
	if n := c.coordReg.Counter("fabric.local_fallback").Value(); n != 0 {
		t.Errorf("local_fallback %d: the cluster must not have fallen back", n)
	}
}

// TestConformanceWorkerKill re-runs the full matrix with a worker killed
// mid-campaign (its context dies between lease grant and execution, so it
// goes silent holding a lease). The coordinator must steal the orphaned
// cell back and the merged result must stay golden — node death degrades
// to latency, never to a wrong or missing cell.
func TestConformanceWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("full 11×3 distributed matrix under chaos")
	}
	c := startCluster(t, clusterOpts{workers: 2, lease: time.Second})
	// A third worker with its own context: its task hook kills it the
	// moment it is handed its 2nd cell, after the lease grant but before
	// any work or report — the cell is orphaned under a live lease.
	w0ctx, w0cancel := context.WithCancel(context.Background())
	defer w0cancel()
	var w0tasks atomic.Int64
	w0, err := fabric.NewWorker(fabric.WorkerConfig{
		Coordinator: c.ts.URL,
		ID:          "doomed",
		CacheDir:    t.TempDir(),
		Registry:    metrics.NewRegistry(),
		HTTPClient:  c.ts.Client(),
		TaskHook: func(fabric.Task) {
			if w0tasks.Add(1) == 2 {
				w0cancel() // die holding the lease
			}
		},
		Log: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); w0.Run(w0ctx) }()

	camp := core.NewCampaign(workloads.Names(), boom.Configs(), workloads.ScaleTiny)
	sw, err := c.coord.RunCampaign(context.Background(), "chaos-kill-11x3", camp, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-done // the doomed worker actually died mid-campaign
	checkAgainstGolden(t, sw)

	if n := c.coordReg.Counter("fabric.cells_stolen").Value(); n < 1 {
		t.Errorf("cells_stolen %d: the dead worker's lease was never reclaimed", n)
	}
	if n := c.coordReg.Counter("fabric.cells_failed").Value(); n != 0 {
		t.Errorf("cells_failed %d: a worker kill must not fail cells", n)
	}
	if got := w0tasks.Load(); got != 2 {
		t.Errorf("doomed worker saw %d tasks, want exactly 2 (one done, one orphaned)", got)
	}
}

// TestCoordinatorRestartResume: kill the coordinator mid-campaign, start
// a fresh one over the same journal/store directory with Resume on, and
// finish. Cells journaled before the crash must not recompute, and the
// final bytes must equal the direct single-node encoding.
func TestCoordinatorRestartResume(t *testing.T) {
	shared := t.TempDir()
	camp := core.NewCampaign([]string{"sha", "qsort"},
		mustConfigs(t, "MediumBOOM", "MegaBOOM"), workloads.ScaleTiny)
	const id = "restart-resume-campaign"

	// Phase A: run until at least 2 cells are done, then kill the
	// coordinator (cancel RunCampaign and tear the cluster down).
	a := startCluster(t, clusterOpts{workers: 2, storeDir: shared})
	actx, acancel := context.WithCancel(context.Background())
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if a.coordReg.Counter("fabric.cells_done").Value() >= 2 {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		acancel()
	}()
	if _, err := a.coord.RunCampaign(actx, id, camp, nil); err == nil {
		t.Fatal("phase A was supposed to die mid-campaign")
	}
	doneA := a.coordReg.Counter("fabric.cells_done").Value()
	if doneA < 2 {
		t.Fatalf("phase A journaled only %d cells", doneA)
	}
	a.stop()

	// Phase B: new coordinator, same journal + store, resume.
	b := startCluster(t, clusterOpts{workers: 2, storeDir: shared, resume: true})
	sw, err := b.coord.RunCampaign(context.Background(), id, camp, nil)
	if err != nil {
		t.Fatal(err)
	}
	resumed := b.coordReg.Counter("fabric.cells_resumed").Value()
	if resumed < 1 {
		t.Errorf("cells_resumed %d: the journal fragment was not replayed", resumed)
	}
	if total := resumed + b.coordReg.Counter("fabric.cells_done").Value(); total != 6 {
		t.Errorf("resumed %d + done %d ≠ 6 cells", resumed, total-resumed)
	}

	enc, err := serve.EncodeSweep(id, camp.Scale, sw)
	if err != nil {
		t.Fatal(err)
	}
	if want := directBytes(t, id, camp); !bytes.Equal(enc, want) {
		t.Errorf("resumed distributed bytes differ from direct run:\n got %s\nwant %s", enc, want)
	}
}

// TestWarmProfileEconomy: the remote store must extend the paper's
// shared-stage economy across machines. A parametric 4-point DSE campaign
// over one workload on 3 workers must run the profile→select→checkpoint
// chain exactly once cluster-wide (every other worker fetches it), one
// measure per design point — and still produce the direct run's bytes.
func TestWarmProfileEconomy(t *testing.T) {
	cfgs, err := dse.Expand(dse.Spec{
		Base: "MediumBOOM",
		Axes: []dse.Axis{
			{Param: "rob", Values: []string{"48", "64"}},
			{Param: "predictor", Values: []string{"tage", "gshare"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 4 {
		t.Fatalf("expanded %d configs, want 4", len(cfgs))
	}
	camp := core.NewCampaign([]string{"sha"}, cfgs, workloads.ScaleTiny)

	c := startCluster(t, clusterOpts{workers: 3})
	sw, err := c.coord.RunCampaign(context.Background(), "dse-economy", camp, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Miss-count accounting across every worker: each profile stage
	// computed exactly once cluster-wide, each measure cell exactly once.
	for _, stage := range []string{"bbv", "select", "checkpoint"} {
		if n := c.workerCounterSum("artifact." + stage + ".miss"); n != 1 {
			t.Errorf("cluster-wide %s misses %d, want exactly 1 (one compute, rest fetched)", stage, n)
		}
	}
	if n := c.workerCounterSum("artifact.measure.miss"); n != 4 {
		t.Errorf("cluster-wide measure misses %d, want 4 (one per design point)", n)
	}
	if n := c.workerCounterSum("artifact.remote.fetch"); n < 1 {
		t.Errorf("remote fetches %d: no worker used the store, economy untested", n)
	}
	if n := c.workerCounterSum("artifact.remote.push"); n < 7 {
		t.Errorf("remote pushes %d, want ≥7 (3 profile stages + 4 measures)", n)
	}

	enc, err := serve.EncodeSweep("dse", camp.Scale, sw)
	if err != nil {
		t.Fatal(err)
	}
	if want := directBytes(t, "dse", camp); !bytes.Equal(enc, want) {
		t.Errorf("warm distributed bytes differ from direct run:\n got %s\nwant %s", enc, want)
	}
}

// TestLeaseFaultInjection: the "fabric.lease" chaos site fails lease
// grants; workers back off and retry, and the campaign completes with the
// direct run's exact bytes.
func TestLeaseFaultInjection(t *testing.T) {
	c := startCluster(t, clusterOpts{workers: 2, chaos: "11:fabric.lease=errorx5"})
	camp := core.NewCampaign([]string{"sha", "qsort"},
		mustConfigs(t, "MediumBOOM"), workloads.ScaleTiny)
	sw, err := c.coord.RunCampaign(context.Background(), "lease-faults", camp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.coordReg.Counter("fabric.lease_faults").Value(); n != 5 {
		t.Errorf("lease_faults %d, want the full injected 5", n)
	}
	enc, err := serve.EncodeSweep("lf", camp.Scale, sw)
	if err != nil {
		t.Fatal(err)
	}
	if want := directBytes(t, "lf", camp); !bytes.Equal(enc, want) {
		t.Errorf("faulted distributed bytes differ from direct run")
	}
}

// TestStatusDraining: while the drain check reports true, the fabric
// status endpoint answers 503 with a Retry-After header and a typed JSON
// error — and recovers to 200 when the drain check clears.
func TestStatusDraining(t *testing.T) {
	c := startCluster(t, clusterOpts{workers: 0})
	var draining atomic.Bool
	c.coord.SetDrainCheck(draining.Load)

	get := func() *http.Response {
		t.Helper()
		resp, err := c.ts.Client().Get(c.ts.URL + "/v1/fabric/status")
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := get()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status before drain: %s", resp.Status)
	}
	resp.Body.Close()

	draining.Store(true)
	resp = get()
	body := make([]byte, 256)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining status code %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("draining 503 missing Retry-After header")
	}
	if !strings.Contains(string(body[:n]), "draining") {
		t.Errorf("draining body %q lacks a typed error", body[:n])
	}

	draining.Store(false)
	resp = get()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status after drain cleared: %s", resp.Status)
	}
	resp.Body.Close()
}

// TestLocalFallback: a coordinator with zero live workers runs the
// campaign on the job's local runner — a solo boomd is the pre-fabric
// daemon, byte for byte.
func TestLocalFallback(t *testing.T) {
	c := startCluster(t, clusterOpts{workers: 0})
	camp := core.NewCampaign([]string{"sha"}, mustConfigs(t, "MediumBOOM"), workloads.ScaleTiny)
	local := core.New(core.FlowConfigFor(camp.Scale), core.WithScale(camp.Scale))
	sw, err := c.coord.RunCampaign(context.Background(), "fallback", camp, local)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.coordReg.Counter("fabric.local_fallback").Value(); n != 1 {
		t.Errorf("local_fallback %d, want 1", n)
	}
	enc, err := serve.EncodeSweep("fb", camp.Scale, sw)
	if err != nil {
		t.Fatal(err)
	}
	if want := directBytes(t, "fb", camp); !bytes.Equal(enc, want) {
		t.Errorf("fallback bytes differ from direct run")
	}
}

func mustConfigs(t *testing.T, names ...string) []boom.Config {
	t.Helper()
	out := make([]boom.Config, len(names))
	for i, n := range names {
		cfg, err := boom.ConfigByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = cfg
	}
	return out
}

func jsonDecode(resp *http.Response, v interface{}) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
