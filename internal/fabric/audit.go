package fabric

import (
	"crypto/sha256"
	"fmt"
	"hash/fnv"
	"time"
)

// Result auditing: the coordinator's defense against a worker that
// executes but lies — a flaky DIMM, a miscompiled binary, a node whose
// "deterministic" model drifted. The rest of the fabric already assumes
// bit-reproducibility; auditing weaponizes it. A deterministic sample of
// completed measure cells is re-dispatched to a *different* worker as a
// Fresh task (recomputed without the shared artifact store, so the audit
// is an independent derivation, not a cache read-back), and the two
// payload fingerprints are compared. Byte-identity is the only passing
// grade.
//
// Divergence cannot, by itself, name the liar — so arbitration is a
// majority vote: a tie-break execution goes to a third worker, any
// fingerprint reaching two votes wins, and every worker that voted for a
// minority fingerprint is quarantined: it is granted no further cells,
// its leased cells are stolen, and its unaudited completed cells are
// requeued (and revoked from the journal fragment) as suspect. The
// campaign then converges on majority bytes with the same golden digests
// an honest cluster produces.
//
// Costs and bounds: auditing holds sampled cells out of the done count
// until resolution, spends at most maxAuditGrants re-executions per cell,
// and degrades gracefully — no eligible independent auditor (single
// worker, everyone else quarantined or already a voter) abandons the
// audit and accepts the original result ("fabric.audits_abandoned")
// rather than deadlocking the campaign. Majority arbitration needs three
// independent derivations, so a two-worker cluster can detect divergence
// but not attribute it; it logs and abandons.

// maxAuditGrants bounds audit re-executions per cell (original report
// excluded): one audit, one tie-break, one spare for a stolen or failed
// audit lease.
const maxAuditGrants = 3

// auditReport is one worker's vote: the fingerprint (and bytes) it
// derived for a cell.
type auditReport struct {
	worker  string
	sum     [sha256.Size]byte
	payload []byte
}

// Audited reports whether the cell named label falls in campaign id's
// audit sample at fraction frac. The decision is a pure function of
// (id, label, frac) — deterministic across coordinator restarts and
// resumes, so a resumed campaign audits the same cells and operators can
// predict the sample offline.
func Audited(campaignID, label string, frac float64) bool {
	if frac <= 0 {
		return false
	}
	if frac >= 1 {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(campaignID))
	h.Write([]byte{0})
	h.Write([]byte(label))
	// FNV's high bits mix poorly across near-identical labels; run the sum
	// through a splitmix64-style finalizer before thresholding, then take
	// the top 53 bits → uniform float in [0, 1).
	x := h.Sum64()
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/float64(1<<53) < frac
}

func hasVoted(cl *cell, worker string) bool {
	for _, rep := range cl.reports {
		if rep.worker == worker {
			return true
		}
	}
	return false
}

// auditWantedLocked decides, at first-report time, whether to hold a
// completed cell for audit: sampling says yes AND at least one live,
// unquarantined worker other than the reporter exists to re-derive it.
func (c *Coordinator) auditWantedLocked(r *run, cl *cell, reporter string, now time.Time) bool {
	if c.cfg.AuditFrac <= 0 || cl.task.Kind != taskMeasure {
		return false
	}
	if !Audited(r.id, cl.task.Label(), c.cfg.AuditFrac) {
		return false
	}
	for id, ws := range c.workers {
		if id != reporter && !ws.quarantined && now.Sub(ws.lastSeen) <= 3*c.cfg.Lease {
			return true
		}
	}
	return false
}

// anyEligibleAuditorLocked reports whether any live, unquarantined worker
// that has not already voted on cl exists — i.e. whether the audit can
// still make progress.
func (c *Coordinator) anyEligibleAuditorLocked(cl *cell, now time.Time) bool {
	for id, ws := range c.workers {
		if !ws.quarantined && now.Sub(ws.lastSeen) <= 3*c.cfg.Lease && !hasVoted(cl, id) {
			return true
		}
	}
	return false
}

// grantAuditLocked tries to lease an audit re-execution of cl to worker.
// Returns nil without granting when the worker already voted (a worker
// never audits its own derivation); if on top of that no eligible auditor
// remains anywhere, or the grant budget is spent, the audit is abandoned
// in place so the campaign cannot deadlock on verification.
func (c *Coordinator) grantAuditLocked(r *run, cl *cell, worker string, now time.Time) *Task {
	if cl.auditRounds >= maxAuditGrants {
		c.abandonAuditLocked(r, cl, fmt.Sprintf("%d audit grant(s) spent without a majority", cl.auditRounds))
		return nil
	}
	if hasVoted(cl, worker) {
		if !c.anyEligibleAuditorLocked(cl, now) {
			c.abandonAuditLocked(r, cl, "no eligible independent auditor")
		}
		return nil
	}
	cl.auditRounds++
	c.seq++
	cl.state = cellAuditLeased
	cl.worker = worker
	cl.deadline = now.Add(c.cfg.Lease)
	cl.task.Seq = c.seq
	t := cl.task
	t.Fresh = true // the granted copy only: cl.task itself stays a normal cell identity
	c.count("fabric.audit_grants")
	return &t
}

// resolveAuditLocked re-tallies after a new vote. Two matching
// fingerprints finalize the cell; minority voters are quarantined first
// (so their other results are requeued before this run can finish); a
// tie returns the cell to the audit queue for a tie-break grant.
func (c *Coordinator) resolveAuditLocked(r *run, cl *cell) {
	counts := map[[sha256.Size]byte]int{}
	for _, rep := range cl.reports {
		counts[rep.sum]++
	}
	var winner [sha256.Size]byte
	best := 0
	for s, n := range counts {
		if n > best {
			winner, best = s, n
		}
	}
	if best < 2 {
		// Every vote distinct: no verdict yet. Queue for a tie-break.
		cl.state = cellAuditWait
		cl.worker = ""
		return
	}
	if len(counts) == 1 {
		c.count("fabric.audits_passed")
	} else {
		c.count("fabric.audits_diverged")
		c.logf("campaign %s: AUDIT DIVERGENCE on %s: %d fingerprint(s) across %d vote(s)",
			short(r.id), cl.task.Label(), len(counts), len(cl.reports))
	}
	var win auditReport
	for _, rep := range cl.reports {
		if rep.sum == winner {
			win = rep
			break
		}
	}
	// Quarantine before finalizing: requeuing the liar's other suspect
	// cells must land before this cell's completion can finish the run.
	for _, rep := range cl.reports {
		if rep.sum != winner {
			c.quarantineLocked(rep.worker,
				fmt.Sprintf("result for %s diverged from the %d-vote majority", cl.task.Label(), best), cl)
		}
	}
	c.finishCellLocked(r, cl, win.worker, win.payload, true)
}

// abandonAuditLocked gives up on verifying cl and accepts the original
// report: a campaign must complete even when the cluster cannot assemble
// a majority. The cell stays marked unaudited, so a later quarantine of
// its producer still requeues it.
func (c *Coordinator) abandonAuditLocked(r *run, cl *cell, reason string) {
	orig := cl.reports[0]
	c.count("fabric.audits_abandoned")
	if len(cl.reports) > 1 {
		sums := map[[sha256.Size]byte]bool{}
		for _, rep := range cl.reports {
			sums[rep.sum] = true
		}
		if len(sums) > 1 {
			c.count("fabric.audits_diverged")
			c.logf("campaign %s: UNRESOLVED AUDIT DIVERGENCE on %s (%s); accepting %s's original result",
				short(r.id), cl.task.Label(), reason, orig.worker)
		}
	} else {
		c.logf("campaign %s: abandoning audit of %s (%s)", short(r.id), cl.task.Label(), reason)
	}
	c.finishCellLocked(r, cl, orig.worker, orig.payload, false)
}

// quarantineLocked banishes a worker whose bytes lost an audit vote: no
// further grants, leased cells stolen, and every unaudited measure cell
// it completed requeued as suspect — with the journal record revoked, so
// a resume recomputes rather than trusts. except (the cell whose audit
// convicted the worker) is being finalized by the caller and is skipped.
func (c *Coordinator) quarantineLocked(worker, reason string, except *cell) {
	ws := c.workers[worker]
	if ws == nil {
		ws = &workerState{id: worker, lastSeen: time.Now()}
		c.workers[worker] = ws
	}
	if ws.quarantined {
		return
	}
	ws.quarantined = true
	c.count("fabric.workers_quarantined")
	c.logf("worker %s QUARANTINED: %s", worker, reason)
	for _, rid := range c.runOrder {
		r := c.runs[rid]
		if r.finished {
			continue
		}
		for _, label := range r.order {
			cl := r.cells[label]
			if cl == except {
				continue
			}
			switch cl.state {
			case cellLeased:
				if cl.worker == worker {
					cl.state = cellPending
					cl.worker = ""
					c.count("fabric.cells_requeued_suspect")
				}
			case cellAuditLeased:
				if cl.worker == worker {
					cl.state = cellAuditWait
					cl.worker = ""
					c.count("fabric.cells_stolen")
				}
			case cellDone:
				if cl.doneBy == worker && !cl.audited && cl.task.Kind == taskMeasure {
					cl.state = cellPending
					cl.worker = ""
					cl.doneBy = ""
					cl.payload = nil
					cl.reports = nil
					cl.auditRounds = 0
					r.remaining++
					r.frag.revokeCell(label)
					c.count("fabric.cells_requeued_suspect")
					c.logf("campaign %s: requeuing suspect cell %s (completed by quarantined %s)",
						short(r.id), label, worker)
				}
			}
		}
	}
}

// finishCellLocked is the one way a cell becomes done: records the
// producer, journals the payload, and closes the run when it was the
// last. audited marks results that survived fingerprint verification —
// unaudited ones remain revocable if their producer is later quarantined.
func (c *Coordinator) finishCellLocked(r *run, cl *cell, worker string, payload []byte, audited bool) {
	cl.state = cellDone
	cl.worker = ""
	cl.doneBy = worker
	cl.audited = audited
	cl.payload = payload
	cl.reports = nil
	r.remaining--
	c.count("fabric.cells_done")
	if c.reg != nil {
		c.reg.Counter("fabric.cells_done." + worker).Inc()
	}
	if ws := c.workers[worker]; ws != nil {
		ws.cellsDone++
	}
	r.frag.appendCell(cl.task.Label(), payload)
	if r.remaining == 0 {
		c.finishLocked(r)
	}
}
