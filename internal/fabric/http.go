package fabric

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// The coordinator's HTTP surface. Four worker-facing POST endpoints
// (register, poll, heartbeat, done), an operator status endpoint that
// answers 503 + Retry-After while the node drains, and the campaign-spec
// fetch workers use to reconstruct the exact design points they measure.

const maxBody = 1 << 26 // 64 MiB: comfortably above any measure payload

func (c *Coordinator) readJSON(w http.ResponseWriter, req *http.Request, v interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBody))
	if err := dec.Decode(v); err != nil {
		c.httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

// writeJSON encodes v as the response body. An encode failure — a closed
// connection mid-write, an unencodable value — leaves the peer with a
// half-written (or empty) body it will reject; that cannot be repaired
// here, but it must not be silent either: every failure counts into
// fabric.http_encode_errors and the first one is logged so an operator
// can tell a misbehaving wire from a healthy one.
func (c *Coordinator) writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		c.encodeError(err)
	}
}

func (c *Coordinator) httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": msg}); err != nil {
		c.encodeError(err)
	}
}

// encodeError accounts one response-encoding failure. Logged once per
// coordinator — the counter carries the rate, the log line carries the
// first cause — so a flapping client cannot flood the log.
func (c *Coordinator) encodeError(err error) {
	c.count("fabric.http_encode_errors")
	c.encodeErrOnce.Do(func() {
		c.logf("response encode failed (counting further ones in fabric.http_encode_errors): %v", err)
	})
}

// touchWorker upserts the worker's liveness row; register reports whether
// this was an explicit registration (logged and gauged) rather than a
// side effect of polling.
func (c *Coordinator) touchWorker(id string, register bool) {
	now := time.Now()
	c.mu.Lock()
	w := c.workers[id]
	fresh := w == nil
	if fresh {
		w = &workerState{id: id}
		c.workers[id] = w
	}
	w.lastSeen = now
	c.mu.Unlock()
	if fresh {
		if c.reg != nil {
			c.reg.Gauge("fabric.workers").Add(1)
		}
		if register {
			c.logf("worker %s registered", id)
		} else {
			c.logf("worker %s appeared (poll without register)", id)
		}
	}
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, req *http.Request) {
	var body registerRequest
	if !c.readJSON(w, req, &body) {
		return
	}
	if body.Worker == "" {
		c.httpError(w, http.StatusBadRequest, "worker id required")
		return
	}
	c.touchWorker(body.Worker, true)
	c.writeJSON(w, registerResponse{
		LeaseMS: c.cfg.Lease.Milliseconds(),
		PollMS:  c.cfg.Poll.Milliseconds(),
		Store:   c.cfg.Store != nil,
	})
}

func (c *Coordinator) handlePoll(w http.ResponseWriter, req *http.Request) {
	var body pollRequest
	if !c.readJSON(w, req, &body) {
		return
	}
	if body.Worker == "" {
		c.httpError(w, http.StatusBadRequest, "worker id required")
		return
	}
	c.touchWorker(body.Worker, false)
	// Chaos site: a failed lease grant. The worker treats it like any
	// transient coordinator error — back off and poll again — so the
	// campaign completes (byte-identically) despite the faults.
	if err := c.cfg.Injector.Hit("fabric.lease", body.Worker); err != nil {
		c.count("fabric.lease_faults")
		c.httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	if t := c.nextTask(body.Worker); t != nil {
		c.writeJSON(w, pollResponse{Task: t})
		return
	}
	c.writeJSON(w, pollResponse{WaitMS: c.cfg.Poll.Milliseconds()})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, req *http.Request) {
	var body heartbeatRequest
	if !c.readJSON(w, req, &body) {
		return
	}
	c.touchWorker(body.Worker, false)
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.runs[body.Task.Campaign]
	if r == nil {
		c.writeJSON(w, heartbeatResponse{Lost: true})
		return
	}
	cl := r.cells[body.Task.Label()]
	leased := cl != nil && (cl.state == cellLeased || cl.state == cellAuditLeased)
	if !leased || cl.worker != body.Worker || cl.task.Seq != body.Task.Seq {
		// Stolen and possibly regranted under a newer Seq — or already
		// reported. Either way this worker's lease is gone.
		c.writeJSON(w, heartbeatResponse{Lost: true})
		return
	}
	cl.deadline = now.Add(c.cfg.Lease)
	c.writeJSON(w, heartbeatResponse{})
}

func (c *Coordinator) handleDone(w http.ResponseWriter, req *http.Request) {
	var body doneRequest
	if !c.readJSON(w, req, &body) {
		return
	}
	c.touchWorker(body.Worker, false)
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.runs[body.Task.Campaign]
	if r == nil {
		// Retired campaign: a straggler finishing after completion. Its
		// bytes are identical to the ones already merged, so acknowledge
		// and drop.
		c.writeJSON(w, doneResponse{OK: true})
		return
	}
	label := body.Task.Label()
	cl := r.cells[label]
	if cl == nil {
		c.httpError(w, http.StatusBadRequest, "unknown cell "+label)
		return
	}
	if cl.state == cellDone || cl.state == cellFailed {
		// Duplicate report — the slow half of a stolen cell arriving after
		// the fast half. First fingerprint wins, silently; determinism
		// makes the two byte-identical.
		c.count("fabric.duplicate_results")
		c.writeJSON(w, doneResponse{OK: true})
		return
	}
	if ws := c.workers[body.Worker]; ws != nil && ws.quarantined {
		// A quarantined worker's bytes are never trusted. Its cells were
		// already stolen/requeued when it was quarantined; acknowledge so
		// it stops retrying, and drop the result on the floor.
		c.count("fabric.quarantined_reports_dropped")
		c.writeJSON(w, doneResponse{OK: true})
		return
	}
	if !body.OK {
		if cl.state == cellAuditWait || cl.state == cellAuditLeased {
			// An audit re-execution failed (chaos, OOM, a flaky node). The
			// original result still stands; return the cell to the audit
			// queue — grantAuditLocked's round budget bounds how long the
			// campaign keeps trying before abandoning verification.
			if cl.state == cellAuditLeased && cl.worker == body.Worker {
				cl.state = cellAuditWait
				cl.worker = ""
			}
			c.count("fabric.audit_errors")
			c.logf("campaign %s: audit of %s failed on %s: %s",
				short(r.id), label, body.Worker, body.Error)
			c.writeJSON(w, doneResponse{OK: true})
			return
		}
		cl.attempts++
		c.logf("campaign %s: %s failed on %s (attempt %d/%d): %s",
			short(r.id), label, body.Worker, cl.attempts, c.cfg.MaxAttempts, body.Error)
		if cl.attempts < c.cfg.MaxAttempts {
			cl.state = cellPending
			cl.worker = ""
			c.count("fabric.cells_requeued")
		} else {
			c.failCellLocked(r, cl, body.Error)
		}
		c.writeJSON(w, doneResponse{OK: true})
		return
	}
	sum := sha256.Sum256(body.Payload)
	if cl.state == cellAuditWait || cl.state == cellAuditLeased {
		// An audit vote. Fresh derivations only — a non-Fresh report here
		// is the slow half of a stolen original, which may have read the
		// first worker's artifact from the shared store and so proves
		// nothing. One vote per worker.
		if !body.Task.Fresh || hasVoted(cl, body.Worker) {
			c.count("fabric.duplicate_results")
			c.writeJSON(w, doneResponse{OK: true})
			return
		}
		cl.reports = append(cl.reports, auditReport{worker: body.Worker, sum: sum, payload: body.Payload})
		c.resolveAuditLocked(r, cl)
		c.writeJSON(w, doneResponse{OK: true})
		return
	}
	// First completion of a normal cell: either hold it for audit or
	// finalize it outright.
	if c.auditWantedLocked(r, cl, body.Worker, time.Now()) {
		cl.state = cellAuditWait
		cl.worker = ""
		cl.reports = []auditReport{{worker: body.Worker, sum: sum, payload: body.Payload}}
		c.count("fabric.cells_audited")
		c.logf("campaign %s: holding %s for audit (reported by %s)", short(r.id), label, body.Worker)
	} else {
		c.finishCellLocked(r, cl, body.Worker, body.Payload, false)
	}
	c.writeJSON(w, doneResponse{OK: true})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, req *http.Request) {
	c.mu.Lock()
	drain := c.drain
	c.mu.Unlock()
	if drain != nil && drain() {
		// The same typed rejection submit gives while shutting down: a
		// Retry-After so clients (boomctl status) can distinguish "node
		// draining, ask again" from a dead endpoint.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterDrainSecs))
		c.httpError(w, http.StatusServiceUnavailable, "coordinator is draining; retry later")
		return
	}
	now := time.Now()
	c.mu.Lock()
	reply := StatusReply{
		Workers:   c.sortedWorkersLocked(now),
		Campaigns: make([]CampaignStatus, 0, len(c.runOrder)),
	}
	for _, rid := range c.runOrder {
		r := c.runs[rid]
		cs := CampaignStatus{ID: r.id}
		for _, label := range r.order {
			switch r.cells[label].state {
			case cellPending:
				cs.Pending++
			case cellLeased:
				cs.Leased++
			case cellDone:
				cs.Done++
			case cellFailed:
				cs.Failed++
			case cellAuditWait, cellAuditLeased:
				cs.Auditing++
			}
		}
		reply.Campaigns = append(reply.Campaigns, cs)
	}
	c.mu.Unlock()
	c.writeJSON(w, reply)
}

// retryAfterDrainSecs is the Retry-After hint on drain rejections,
// matching serve's submit-path value.
const retryAfterDrainSecs = 5

func (c *Coordinator) handleCampaign(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	c.mu.Lock()
	var spec []byte
	if r := c.runs[id]; r != nil {
		spec = r.spec
	}
	c.mu.Unlock()
	if spec == nil {
		c.httpError(w, http.StatusNotFound, "no such campaign")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(spec)
}
