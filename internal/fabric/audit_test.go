// Audit & quarantine suite: the trust half of the fabric conformance
// story. Determinism makes every cell's bytes a verifiable claim, so the
// coordinator can catch a worker that executes but lies — these tests
// drive the audit sampling function, the majority-vote arbitration, the
// quarantine/requeue machinery (hand-driven workers over real HTTP, so
// every vote lands in a chosen order), and finally the full 11×3 matrix
// with a lying worker AND network chaos, pinned to the same golden
// digests an honest single node produces.
package fabric_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/serve"
	"repro/internal/workloads"
)

// TestAuditedSampling pins the audit sample down as a pure function of
// (campaign, label, frac): deterministic across calls, empty at frac 0,
// total at frac 1, monotone in frac, and close to frac in expectation.
func TestAuditedSampling(t *testing.T) {
	labels := make([]string, 2000)
	for i := range labels {
		labels[i] = fmt.Sprintf("measure/MediumBOOM/wl-%d", i)
	}
	const id = "sampling-campaign-fingerprint"

	hits := 0
	for _, l := range labels {
		if fabric.Audited(id, l, 0) {
			t.Fatalf("frac 0 audited %s", l)
		}
		if !fabric.Audited(id, l, 1) {
			t.Fatalf("frac 1 skipped %s", l)
		}
		a, b := fabric.Audited(id, l, 0.3), fabric.Audited(id, l, 0.3)
		if a != b {
			t.Fatalf("Audited(%s) not deterministic: %v then %v", l, a, b)
		}
		// The decision is a threshold on one hash value, so a cell audited
		// at a low fraction stays audited at every higher fraction.
		if a && !fabric.Audited(id, l, 0.7) {
			t.Fatalf("%s audited at 0.3 but not 0.7", l)
		}
		if a {
			hits++
		}
	}
	// 2000 draws at p=0.3: mean 600, σ≈20. ±5σ bounds; the inputs are
	// fixed strings, so this is a one-time check, not a flaky one.
	if hits < 500 || hits > 700 {
		t.Errorf("frac 0.3 audited %d/2000 cells; sample badly skewed", hits)
	}

	// Different campaign fingerprints draw different samples.
	same := 0
	for _, l := range labels {
		if fabric.Audited(id, l, 0.3) == fabric.Audited("another-fingerprint", l, 0.3) {
			same++
		}
	}
	if same == len(labels) {
		t.Error("two campaign fingerprints produced identical audit samples")
	}
}

// handWorker drives the coordinator's worker-facing HTTP API by hand, so
// a test controls exactly which "worker" polls, what bytes it reports,
// and in what order — the determinism real concurrent workers can't give.
type handWorker struct {
	t  *testing.T
	ts *httptest.Server
	id string
}

func (h *handWorker) post(path string, body, reply interface{}) {
	h.t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := h.ts.Client().Post(h.ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		h.t.Fatalf("%s %s: %s", h.id, path, resp.Status)
	}
	if reply != nil {
		if err := json.NewDecoder(resp.Body).Decode(reply); err != nil {
			h.t.Fatal(err)
		}
	}
}

func (h *handWorker) register() {
	h.post("/v1/fabric/workers", map[string]string{"worker": h.id}, nil)
}

// poll makes one poll round trip; nil means the coordinator had nothing
// for this worker.
func (h *handWorker) poll() *fabric.Task {
	h.t.Helper()
	var pr struct {
		Task *fabric.Task `json:"task"`
	}
	h.post("/v1/fabric/poll", map[string]string{"worker": h.id}, &pr)
	return pr.Task
}

// pollTask polls until a task is granted (the campaign goroutine may
// still be admitting cells).
func (h *handWorker) pollTask() fabric.Task {
	h.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if task := h.poll(); task != nil {
			return *task
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.t.Fatalf("%s: no task granted within deadline", h.id)
	panic("unreachable")
}

// report sends a successful done-report for task with the given payload.
func (h *handWorker) report(task fabric.Task, payload []byte) {
	h.t.Helper()
	h.post("/v1/fabric/done", struct {
		Worker  string      `json:"worker"`
		Task    fabric.Task `json:"task"`
		OK      bool        `json:"ok"`
		Payload []byte      `json:"payload,omitempty"`
	}{h.id, task, true, payload}, nil)
}

// honestPayload computes a cell's canonical measure bytes the way any
// honest worker would — the ground truth hand-driven tests vote with.
func honestPayload(t *testing.T, camp core.Campaign, wlName, cfgName string) []byte {
	t.Helper()
	r := core.New(core.FlowConfigFor(camp.Scale), core.WithScale(camp.Scale))
	wl, err := workloads.Build(wlName, camp.Scale)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Profile(context.Background(), wl)
	if err != nil {
		t.Fatal(err)
	}
	for i := range camp.Configs {
		if camp.Configs[i].Name != cfgName {
			continue
		}
		res, err := r.Run(context.Background(), p, camp.Configs[i])
		if err != nil {
			t.Fatal(err)
		}
		enc, err := core.EncodeMeasuredResult(res)
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	t.Fatalf("campaign has no config %q", cfgName)
	panic("unreachable")
}

type campaignResult struct {
	sw  *core.Sweep
	err error
}

func runCampaignAsync(c *cluster, id string, camp core.Campaign) <-chan campaignResult {
	ch := make(chan campaignResult, 1)
	go func() {
		sw, err := c.coord.RunCampaign(context.Background(), id, camp, nil)
		ch <- campaignResult{sw, err}
	}()
	return ch
}

func waitCampaign(t *testing.T, ch <-chan campaignResult) *core.Sweep {
	t.Helper()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		return r.sw
	case <-time.After(60 * time.Second):
		t.Fatal("campaign did not complete")
		panic("unreachable")
	}
}

// TestAuditMajorityVoteQuarantine walks the full arbitration protocol by
// hand: worker-0 reports corrupted measure bytes, the audit holds the
// cell, worker-1's independent derivation diverges (1–1 tie), worker-2's
// tie-break forms a 2–1 majority — worker-0 is quarantined and the
// campaign completes with the honest bytes.
func TestAuditMajorityVoteQuarantine(t *testing.T) {
	c := startCluster(t, clusterOpts{workers: 0, audit: 1})
	w0 := &handWorker{t, c.ts, "hand-0"}
	w1 := &handWorker{t, c.ts, "hand-1"}
	w2 := &handWorker{t, c.ts, "hand-2"}
	for _, w := range []*handWorker{w0, w1, w2} {
		w.register()
	}

	camp := core.NewCampaign([]string{"sha"}, mustConfigs(t, "MediumBOOM"), workloads.ScaleTiny)
	const id = "audit-majority-vote"
	honest := honestPayload(t, camp, "sha", "MediumBOOM")
	corrupt := append([]byte(nil), honest...)
	corrupt[0] ^= 0xff

	res := runCampaignAsync(c, id, camp)

	prof := w0.pollTask()
	if prof.Kind != "profile" {
		t.Fatalf("first grant %s, want the profile cell", prof.Label())
	}
	w0.report(prof, nil)
	meas := w0.pollTask()
	if meas.Kind != "measure" || meas.Fresh {
		t.Fatalf("second grant %+v, want the normal measure cell", meas)
	}
	w0.report(meas, corrupt)

	// The cell is held for audit, and the reporter can never audit itself.
	if n := c.coordReg.Counter("fabric.cells_audited").Value(); n != 1 {
		t.Fatalf("cells_audited %d, want 1", n)
	}
	if task := w0.poll(); task != nil {
		t.Fatalf("reporter was granted %s — a worker must not audit its own bytes", task.Label())
	}

	a1 := w1.pollTask()
	if !a1.Fresh || a1.Label() != meas.Label() {
		t.Fatalf("worker-1 granted %+v, want a Fresh audit of %s", a1, meas.Label())
	}
	w1.report(a1, honest)
	// 1–1 tie: no verdict, and neither voter is eligible for the tie-break.
	if n := c.coordReg.Counter("fabric.workers_quarantined").Value(); n != 0 {
		t.Fatalf("quarantined after a 1-1 tie: divergence alone must not convict")
	}
	if task := w1.poll(); task != nil {
		t.Fatalf("voter was granted %s — one vote per worker", task.Label())
	}

	a2 := w2.pollTask()
	if !a2.Fresh || a2.Label() != meas.Label() {
		t.Fatalf("worker-2 granted %+v, want the tie-break audit of %s", a2, meas.Label())
	}
	w2.report(a2, honest)

	sw := waitCampaign(t, res)
	enc, err := serve.EncodeSweep(id, camp.Scale, sw)
	if err != nil {
		t.Fatal(err)
	}
	if want := directBytes(t, id, camp); !bytes.Equal(enc, want) {
		t.Errorf("audited campaign bytes differ from direct run:\n got %s\nwant %s", enc, want)
	}

	for name, want := range map[string]int64{
		"fabric.workers_quarantined": 1,
		"fabric.audits_diverged":     1,
		"fabric.audit_grants":        2,
		"fabric.cells_failed":        0,
	} {
		if n := c.coordReg.Counter(name).Value(); n != want {
			t.Errorf("%s = %d, want %d", name, n, want)
		}
	}

	// The status surface names the quarantined worker.
	resp, err := c.ts.Client().Get(c.ts.URL + "/v1/fabric/status")
	if err != nil {
		t.Fatal(err)
	}
	var status fabric.StatusReply
	if err := jsonDecode(resp, &status); err != nil {
		t.Fatal(err)
	}
	for _, ws := range status.Workers {
		if want := ws.ID == "hand-0"; ws.Quarantined != want {
			t.Errorf("status: %s quarantined=%v, want %v", ws.ID, ws.Quarantined, want)
		}
	}
	if task := w0.poll(); task != nil {
		t.Errorf("quarantined worker was granted %s", task.Label())
	}
}

// TestQuarantineRequeuesSuspectCells: quarantining a worker must also
// retract what it got away with — its earlier unaudited measure cells are
// requeued (and revoked from the journal fragment) and recomputed by an
// honest worker, so the final bytes carry nothing from the liar.
func TestQuarantineRequeuesSuspectCells(t *testing.T) {
	// Pick a campaign fingerprint whose 0.5-fraction sample audits the sha
	// measure cell but not the qsort one: the liar's qsort result then
	// finalizes unaudited and only the later quarantine can catch it.
	const auditedLabel = "measure/MediumBOOM/sha"
	const plainLabel = "measure/MediumBOOM/qsort"
	var id string
	for i := 0; ; i++ {
		cand := fmt.Sprintf("suspect-requeue-%d", i)
		if fabric.Audited(cand, auditedLabel, 0.5) && !fabric.Audited(cand, plainLabel, 0.5) {
			id = cand
			break
		}
	}

	dir := t.TempDir()
	c := startCluster(t, clusterOpts{workers: 0, audit: 0.5, storeDir: dir})
	w0 := &handWorker{t, c.ts, "hand-0"}
	w1 := &handWorker{t, c.ts, "hand-1"}
	w2 := &handWorker{t, c.ts, "hand-2"}
	for _, w := range []*handWorker{w0, w1, w2} {
		w.register()
	}

	camp := core.NewCampaign([]string{"sha", "qsort"}, mustConfigs(t, "MediumBOOM"), workloads.ScaleTiny)
	honestSha := honestPayload(t, camp, "sha", "MediumBOOM")
	honestQsort := honestPayload(t, camp, "qsort", "MediumBOOM")
	corrupt := append([]byte(nil), honestSha...)
	corrupt[0] ^= 0xff

	res := runCampaignAsync(c, id, camp)

	// worker-0 does both profiles, lies on the audited sha cell, and slips
	// an honest qsort result through unaudited.
	for i := 0; i < 2; i++ {
		prof := w0.pollTask()
		if prof.Kind != "profile" {
			t.Fatalf("grant %d was %s, want a profile cell", i, prof.Label())
		}
		w0.report(prof, nil)
	}
	measSha := w0.pollTask()
	if measSha.Label() != auditedLabel {
		t.Fatalf("granted %s, want %s", measSha.Label(), auditedLabel)
	}
	w0.report(measSha, corrupt)
	measQsort := w0.pollTask()
	if measQsort.Label() != plainLabel {
		t.Fatalf("granted %s, want %s", measQsort.Label(), plainLabel)
	}
	w0.report(measQsort, honestQsort)
	if n := c.coordReg.Counter("fabric.cells_audited").Value(); n != 1 {
		t.Fatalf("cells_audited %d, want exactly the sampled sha cell", n)
	}

	// Two honest audit votes convict worker-0 …
	a1 := w1.pollTask()
	w1.report(a1, honestSha)
	a2 := w2.pollTask()
	w2.report(a2, honestSha)
	if n := c.coordReg.Counter("fabric.workers_quarantined").Value(); n != 1 {
		t.Fatalf("workers_quarantined %d, want 1", n)
	}
	// … which retracts its unaudited qsort cell and regrants it to an
	// honest worker.
	if n := c.coordReg.Counter("fabric.cells_requeued_suspect").Value(); n != 1 {
		t.Errorf("cells_requeued_suspect %d, want 1 (the unaudited qsort cell)", n)
	}
	if task := w0.poll(); task != nil {
		t.Fatalf("quarantined worker was granted %s", task.Label())
	}
	redo := w1.pollTask()
	if redo.Label() != plainLabel || redo.Fresh {
		t.Fatalf("regrant was %+v, want a normal regrant of %s", redo, plainLabel)
	}
	w1.report(redo, honestQsort)

	sw := waitCampaign(t, res)
	enc, err := serve.EncodeSweep(id, camp.Scale, sw)
	if err != nil {
		t.Fatal(err)
	}
	if want := directBytes(t, id, camp); !bytes.Equal(enc, want) {
		t.Errorf("requeued campaign bytes differ from direct run:\n got %s\nwant %s", enc, want)
	}

	// The journal fragment must carry the retraction: a revoke record for
	// the suspect cell followed by the honest recomputation, so a resumed
	// coordinator replays honest bytes, not the liar's.
	merged := fabric.MergeJournals(id, fabric.FragmentPath(dir, id))
	if got := merged[plainLabel]; !bytes.Equal(got, honestQsort) {
		t.Errorf("journal replays %d-byte payload for %s; want the honest recomputation", len(got), plainLabel)
	}
	if got := merged[auditedLabel]; !bytes.Equal(got, honestSha) {
		t.Errorf("journal replays wrong payload for %s", auditedLabel)
	}
}

// TestAuditCleanPass: auditing an honest cluster is pure overhead — every
// sampled cell's independent re-derivation matches, nobody is
// quarantined, and the bytes stay the direct run's.
func TestAuditCleanPass(t *testing.T) {
	c := startCluster(t, clusterOpts{workers: 3, audit: 1})
	camp := core.NewCampaign([]string{"sha", "qsort"}, mustConfigs(t, "MediumBOOM"), workloads.ScaleTiny)
	sw, err := c.coord.RunCampaign(context.Background(), "audit-clean", camp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.coordReg.Counter("fabric.audits_passed").Value(); n != 2 {
		t.Errorf("audits_passed %d, want 2 (every measure cell sampled at frac 1)", n)
	}
	for _, name := range []string{"fabric.workers_quarantined", "fabric.audits_diverged", "fabric.cells_failed"} {
		if n := c.coordReg.Counter(name).Value(); n != 0 {
			t.Errorf("%s = %d, want 0 on an honest cluster", name, n)
		}
	}
	enc, err := serve.EncodeSweep("ac", camp.Scale, sw)
	if err != nil {
		t.Fatal(err)
	}
	if want := directBytes(t, "ac", camp); !bytes.Equal(enc, want) {
		t.Errorf("audited bytes differ from direct run")
	}
}

// TestConformanceNetworkChaos is the trust-layer tentpole (and the `make
// fabric-chaos` target): the full 11×3 matrix on a 3-worker cluster where
// worker-0 corrupts every measure payload it reports AND every worker's
// network is hostile — stalled polls, 5xx'd reports and heartbeats,
// corrupted and truncated artifact-store responses. The campaign must
// still complete with zero failed cells, quarantine the liar, recompute
// its cells elsewhere, and land byte-identical to the pinned golden
// digests.
func TestConformanceNetworkChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("full 11×3 distributed matrix under network chaos + audit")
	}
	c := startCluster(t, clusterOpts{
		workers:     3,
		audit:       1,
		workerChaos: []string{"7:fabric.payload/worker-0=corruptx*"},
		netChaos: "23:fabric.poll=delay:20msx3," +
			"fabric.report=errorx2," +
			"fabric.heartbeat=errorx1," +
			"artifact.remote.get=corrupt:4x1," +
			"artifact.remote.get=truncate#1x1," +
			"artifact.remote.put=errorx1",
	})
	camp := core.NewCampaign(workloads.Names(), boom.Configs(), workloads.ScaleTiny)
	sw, err := c.coord.RunCampaign(context.Background(), "chaos-audit-11x3", camp, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstGolden(t, sw)

	if n := c.coordReg.Counter("fabric.workers_quarantined").Value(); n != 1 {
		t.Errorf("workers_quarantined %d, want exactly the lying worker-0", n)
	}
	if n := c.coordReg.Counter("fabric.cells_failed").Value(); n != 0 {
		t.Errorf("cells_failed %d: chaos must degrade to retries, never to failed cells", n)
	}
	if n := c.coordReg.Counter("fabric.audits_diverged").Value(); n < 1 {
		t.Errorf("audits_diverged %d: the corrupted payloads were never caught", n)
	}
	resp, err := c.ts.Client().Get(c.ts.URL + "/v1/fabric/status")
	if err != nil {
		t.Fatal(err)
	}
	var status fabric.StatusReply
	if err := jsonDecode(resp, &status); err != nil {
		t.Fatal(err)
	}
	for _, ws := range status.Workers {
		if want := ws.ID == "worker-0"; ws.Quarantined != want {
			t.Errorf("status: %s quarantined=%v, want %v", ws.ID, ws.Quarantined, want)
		}
	}
}
