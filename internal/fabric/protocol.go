package fabric

import (
	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/sampling"
	"repro/internal/workloads"
)

// Task kinds. A campaign shards into one profile cell per workload (the
// config-independent BBV→select→checkpoint chain) and one measure cell
// per (workload, config) pair; measure cells are gated on their
// workload's profile cell so the expensive chain runs once per workload
// across the whole cluster, not once per design point.
const (
	taskProfile = "profile"
	taskMeasure = "measure"
)

// Task is one schedulable cell of a distributed campaign. Seq is the
// lease sequence number the coordinator stamps on each grant; heartbeats
// echo it so a renewal for a stolen-and-regranted cell is recognizable
// as stale.
type Task struct {
	Campaign string `json:"campaign"`
	Kind     string `json:"kind"` // taskProfile | taskMeasure
	Workload string `json:"workload"`
	Config   string `json:"config,omitempty"` // measure cells only
	Seq      uint64 `json:"seq"`
	// Fresh marks an audit re-execution: the worker must recompute the
	// cell without the shared remote store (and without its normal local
	// cache), so the result is an independent derivation rather than a
	// copy of the artifact under audit.
	Fresh bool `json:"fresh,omitempty"`
}

// Label names the cell the way the sweep journal names tasks
// ("profile/<wl>", "measure/<cfg>/<wl>"), so fabric journal fragments and
// single-node journals speak the same identity language.
func (t Task) Label() string {
	if t.Kind == taskProfile {
		return t.Kind + "/" + t.Workload
	}
	return t.Kind + "/" + t.Config + "/" + t.Workload
}

// Wire bodies for the coordinator's POST endpoints.

type registerRequest struct {
	Worker string `json:"worker"`
}

type registerResponse struct {
	LeaseMS int64 `json:"lease_ms"`
	PollMS  int64 `json:"poll_ms"`
	// Store reports whether the coordinator serves a remote artifact
	// store at /v1/artifacts/ — workers only attach the remote cache tier
	// when there is something to fetch from.
	Store bool `json:"store"`
}

type pollRequest struct {
	Worker string `json:"worker"`
}

type pollResponse struct {
	Task   *Task `json:"task,omitempty"`
	WaitMS int64 `json:"wait_ms,omitempty"` // idle backoff hint when no task
}

type heartbeatRequest struct {
	Worker string `json:"worker"`
	Task   Task   `json:"task"`
}

type heartbeatResponse struct {
	// Lost tells the worker its lease is gone (expired and stolen, or the
	// campaign retired): abandon the cell without reporting.
	Lost bool `json:"lost,omitempty"`
}

type doneRequest struct {
	Worker string `json:"worker"`
	Task   Task   `json:"task"`
	OK     bool   `json:"ok"`
	// Payload is the canonical measure-artifact bytes for measure cells
	// (core.EncodeMeasuredResult); empty for profile cells, whose product
	// travels through the artifact store instead.
	Payload []byte `json:"payload,omitempty"`
	Error   string `json:"error,omitempty"`
}

type doneResponse struct {
	OK bool `json:"ok"`
}

// campaignWire is the spec served by GET /v1/fabric/campaigns/{id}.
// boom.Config is a flat struct of exported scalars (pinned by a
// reflection guard in internal/boom), so a JSON round trip reproduces
// every design point exactly and the worker-side campaign fingerprint
// matches the coordinator's.
type campaignWire struct {
	Workloads []string      `json:"workloads"`
	Configs   []boom.Config `json:"configs"`
	Scale     int           `json:"scale"`
	// Sampling carries the campaign's sampling spec; sampling.Spec is a
	// flat struct of scalars, so the round trip is exact and workers
	// profile/measure under byte-identical sampling parameters.
	Sampling sampling.Spec `json:"sampling"`
}

func encodeCampaign(c core.Campaign) campaignWire {
	return campaignWire{Workloads: c.Workloads, Configs: c.Configs, Scale: int(c.Scale), Sampling: c.Sampling}
}

func (w campaignWire) campaign() core.Campaign {
	c := core.NewCampaign(w.Workloads, w.Configs, workloads.Scale(w.Scale))
	c.Sampling = w.Sampling
	return c
}

// WorkerStatus is one worker's row in StatusReply.
type WorkerStatus struct {
	ID         string `json:"id"`
	Live       bool   `json:"live"`
	CellsDone  int64  `json:"cells_done"`
	LastSeenMS int64  `json:"last_seen_ms"` // milliseconds since last contact
	// Quarantined marks a worker whose results diverged from the audit
	// majority: it is granted no further cells and its unaudited results
	// were requeued.
	Quarantined bool `json:"quarantined,omitempty"`
}

// CampaignStatus is one in-flight campaign's cell accounting.
type CampaignStatus struct {
	ID       string `json:"id"`
	Pending  int    `json:"pending"`
	Leased   int    `json:"leased"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Auditing int    `json:"auditing,omitempty"` // completed cells held for audit
}

// StatusReply is the body of GET /v1/fabric/status. While the node is
// draining the endpoint returns 503 with a Retry-After header and an
// {"error": ...} body instead — the same typed rejection submit gives —
// so clients see "draining, retry later", never a bare failure.
type StatusReply struct {
	Draining  bool             `json:"draining"`
	Workers   []WorkerStatus   `json:"workers"`
	Campaigns []CampaignStatus `json:"campaigns"`
}
