package fabric

import (
	"os"
	"path/filepath"
	"testing"
)

// writeFragment builds a fragment file through the production writer.
func writeFragment(t *testing.T, dir, name, campaignID string, cells map[string][]byte, order []string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	w := openFragment(path, campaignID, false, t.Logf)
	if w == nil {
		t.Fatal("openFragment failed")
	}
	for _, label := range order {
		w.appendCell(label, cells[label])
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMergeInterleaved: fragments from two workers that each finished a
// disjoint half of a campaign merge to the union, payloads intact.
func TestMergeInterleaved(t *testing.T) {
	dir := t.TempDir()
	a := writeFragment(t, dir, "a.journal", "camp-1", map[string][]byte{
		"profile/sha":        nil,
		"measure/medium/sha": []byte("sha@medium"),
		"measure/mega/qsort": []byte("qsort@mega"),
	}, []string{"profile/sha", "measure/medium/sha", "measure/mega/qsort"})
	b := writeFragment(t, dir, "b.journal", "camp-1", map[string][]byte{
		"profile/qsort":        nil,
		"measure/mega/sha":     []byte("sha@mega"),
		"measure/medium/qsort": []byte("qsort@medium"),
	}, []string{"profile/qsort", "measure/mega/sha", "measure/medium/qsort"})

	cells := MergeJournals("camp-1", a, b)
	if len(cells) != 6 {
		t.Fatalf("merged %d cells, want 6: %v", len(cells), cells)
	}
	for label, want := range map[string]string{
		"measure/medium/sha":   "sha@medium",
		"measure/mega/sha":     "sha@mega",
		"measure/medium/qsort": "qsort@medium",
		"measure/mega/qsort":   "qsort@mega",
	} {
		if got, ok := cells[label]; !ok || string(got) != want {
			t.Errorf("%s = %q, %v; want %q", label, got, ok, want)
		}
	}
	// Profile cells merge with presence semantics: present, nil payload.
	for _, label := range []string{"profile/sha", "profile/qsort"} {
		if payload, ok := cells[label]; !ok || payload != nil {
			t.Errorf("%s = %q, %v; want present with nil payload", label, payload, ok)
		}
	}
}

// TestMergeDuplicateFirstWins: a cell finished by two workers (lease
// stolen, both completed) resolves silently to the first fragment's
// payload — determinism makes the duplicates byte-identical in a healthy
// cluster, so the choice is unobservable there; this test makes them
// differ to pin which one wins.
func TestMergeDuplicateFirstWins(t *testing.T) {
	dir := t.TempDir()
	a := writeFragment(t, dir, "a.journal", "camp-1",
		map[string][]byte{"measure/medium/sha": []byte("first")},
		[]string{"measure/medium/sha"})
	b := writeFragment(t, dir, "b.journal", "camp-1",
		map[string][]byte{"measure/medium/sha": []byte("second")},
		[]string{"measure/medium/sha"})
	cells := MergeJournals("camp-1", a, b)
	if got := string(cells["measure/medium/sha"]); got != "first" {
		t.Errorf("duplicate resolved to %q, want first occurrence", got)
	}
	// And in the opposite path order the other fragment wins.
	cells = MergeJournals("camp-1", b, a)
	if got := string(cells["measure/medium/sha"]); got != "second" {
		t.Errorf("reversed order resolved to %q, want %q", got, "second")
	}
}

// TestMergeTornTrailingLine: a crash mid-append leaves a torn final line;
// the complete prefix still merges.
func TestMergeTornTrailingLine(t *testing.T) {
	dir := t.TempDir()
	p := writeFragment(t, dir, "a.journal", "camp-1", map[string][]byte{
		"profile/sha":        nil,
		"measure/medium/sha": []byte("ok"),
	}, []string{"profile/sha", "measure/medium/sha"})
	f, err := os.OpenFile(p, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"ev":"cell","task":"measure/mega/sha","pa`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cells := MergeJournals("camp-1", p)
	if len(cells) != 2 {
		t.Fatalf("merged %d cells, want the 2 complete ones: %v", len(cells), cells)
	}
	if _, ok := cells["measure/mega/sha"]; ok {
		t.Error("torn record must not merge")
	}
}

// TestMergeForeignFragment: a fragment whose header pins a different
// campaign is ignored whole — fragments never cross-pollinate campaigns.
func TestMergeForeignFragment(t *testing.T) {
	dir := t.TempDir()
	ours := writeFragment(t, dir, "ours.journal", "camp-1",
		map[string][]byte{"measure/medium/sha": []byte("ours")},
		[]string{"measure/medium/sha"})
	theirs := writeFragment(t, dir, "theirs.journal", "camp-2",
		map[string][]byte{"measure/medium/sha": []byte("theirs"), "measure/mega/fft": []byte("x")},
		[]string{"measure/medium/sha", "measure/mega/fft"})

	cells := MergeJournals("camp-1", ours, theirs)
	if len(cells) != 1 || string(cells["measure/medium/sha"]) != "ours" {
		t.Errorf("merge polluted by foreign fragment: %v", cells)
	}
	// Missing files are skipped, not fatal.
	cells = MergeJournals("camp-1", filepath.Join(dir, "nope.journal"), ours)
	if len(cells) != 1 {
		t.Errorf("missing fragment path broke the merge: %v", cells)
	}
}

// TestFragmentExtendRoundTrip: the coordinator-restart shape — recover
// cells from a fragment, reopen it in extend mode, append more, and
// verify a second recovery sees both generations.
func TestFragmentExtendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := FragmentPath(dir, "0123456789abcdef0123")
	w := openFragment(path, "0123456789abcdef0123", false, t.Logf)
	w.appendCell("profile/sha", nil)
	w.appendCell("measure/medium/sha", []byte("gen-1"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got := MergeJournals("0123456789abcdef0123", path)
	if len(got) != 2 {
		t.Fatalf("first recovery %v", got)
	}

	w = openFragment(path, "0123456789abcdef0123", true, t.Logf)
	w.appendCell("measure/mega/sha", []byte("gen-2"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got = MergeJournals("0123456789abcdef0123", path)
	if len(got) != 3 || string(got["measure/mega/sha"]) != "gen-2" || string(got["measure/medium/sha"]) != "gen-1" {
		t.Fatalf("second recovery %v", got)
	}

	// Truncate mode (a fresh campaign admission without resume) discards
	// the old generations.
	w = openFragment(path, "0123456789abcdef0123", false, t.Logf)
	w.appendCell("profile/fft", nil)
	w.Close()
	got = MergeJournals("0123456789abcdef0123", path)
	if len(got) != 1 {
		t.Fatalf("truncating reopen kept stale cells: %v", got)
	}
}

// TestNilFragmentWriter: a nil writer (journaling disabled) is inert.
func TestNilFragmentWriter(t *testing.T) {
	var w *fragmentWriter
	w.appendCell("measure/medium/sha", []byte("x"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
