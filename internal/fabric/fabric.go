// Package fabric is the distributed sweep plane: a coordinator that
// shards a campaign's (workload × config) cells across registered
// workers, and the worker loop that leases cells, executes them with the
// ordinary core.Runner, and reports canonical result bytes back.
//
// The design leans entirely on the determinism the rest of the codebase
// already guarantees. Every cell is an isolated, bit-reproducible
// computation keyed by the campaign fingerprint, so the coordinator never
// has to arbitrate between results: a stolen cell finished twice produced
// identical bytes both times, a resumed campaign replays journal
// fragments instead of recomputing, and the merged Sweep encodes — via
// the same wall-clock-free serve.EncodeSweep — byte-identically to a
// single-node Runner.Sweep of the same campaign.
//
// Scheduling is a pull model with leases:
//
//   - Workers POST /v1/fabric/poll; the coordinator grants the first
//     runnable cell (profile cells first; measure cells gate on their
//     workload's profile cell) under a lease with a deadline.
//   - Workers heartbeat while executing; a heartbeat renews the lease. A
//     worker that dies, hangs, or partitions simply stops heartbeating,
//     the lease expires, and the next poll steals the cell back
//     ("fabric.cells_stolen") — node death degrades to extra latency,
//     never to a lost or wrong cell.
//   - Completed measure cells ship their canonical measure-artifact
//     payload in the done report; profile cells publish their artifacts
//     through the remote store (internal/artifact) instead, so every
//     other worker's measure cells fetch the one profile chain rather
//     than recomputing it — the paper's shared-stage economy, across
//     machines.
//
// Chaos sites: "fabric.lease/<worker>" fails a poll (the worker backs
// off and retries), and the artifact tier's "artifact.fetch/<stage>"
// exercises the fetch-verify-evict path. Both are deterministic under
// internal/faultinject seeds.
package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/metrics"
)

// Config carries the coordinator's knobs. The zero value is usable: no
// store, no journal, 15s leases.
type Config struct {
	// Store, when set, is served as the cluster's remote artifact store at
	// /v1/artifacts/ (see artifact.NewServer). Point it at the same
	// directory as the local runner's cache so locally-computed and
	// worker-pushed artifacts pool together.
	Store *artifact.Cache
	// Registry collects fabric metrics (cells_done, cells_stolen,
	// workers, per-worker counters). Nil disables instrumentation.
	Registry *metrics.Registry
	// Lease is how long a granted cell stays owned without a heartbeat
	// before it is stolen back (default 15s).
	Lease time.Duration
	// Poll is the idle backoff hint returned to workers when no cell is
	// runnable (default 250ms).
	Poll time.Duration
	// MaxAttempts bounds how many times a cell that *reports* failure is
	// regranted before it is marked failed (default 3). Lease expiries are
	// not failures and do not count.
	MaxAttempts int
	// KeepGoing mirrors core.WithKeepGoing: failed cells are collected
	// into a *core.SweepErrors next to the partial Sweep instead of
	// aborting the campaign.
	KeepGoing bool
	// Resume replays this campaign's journal fragment under JournalDir:
	// cells recorded done are served from the fragment, not recomputed.
	Resume bool
	// JournalDir, when set, holds the coordinator's per-campaign journal
	// fragments (conventionally the cache directory).
	JournalDir string
	// AuditFrac is the fraction of completed measure cells re-dispatched
	// to a different worker for fingerprint verification (0 = no auditing,
	// 1 = every cell). The sample is a deterministic function of the
	// campaign fingerprint and cell label (see Audited); divergent workers
	// are quarantined by majority vote.
	AuditFrac float64
	// Injector arms the "fabric.lease/<worker>" chaos site.
	Injector *faultinject.Injector
	// Log receives one line per lifecycle event (nil = silent).
	Log func(format string, args ...interface{})
}

// Coordinator owns the cell scheduler and the fabric's HTTP surface.
// Create with NewCoordinator; campaigns enter through RunCampaign (the
// serve.Config.Distribute hook) and workers through Handler.
type Coordinator struct {
	cfg Config
	reg *metrics.Registry
	mux *http.ServeMux

	mu       sync.Mutex
	workers  map[string]*workerState
	runs     map[string]*run
	runOrder []string
	seq      uint64
	drain    func() bool

	// encodeErrOnce gates the single log line for response-encode failures;
	// the rate lives in the fabric.http_encode_errors counter (see http.go).
	encodeErrOnce sync.Once
}

type workerState struct {
	id          string
	lastSeen    time.Time
	cellsDone   int64
	quarantined bool // audit divergence: granted nothing, trusted with nothing
}

type cellState int

const (
	cellPending cellState = iota
	cellLeased
	cellDone
	cellFailed
	cellAuditWait   // completed but held: awaiting an audit re-execution grant
	cellAuditLeased // audit re-execution in flight on another worker
)

// cell is one schedulable unit's authoritative state, guarded by
// Coordinator.mu.
type cell struct {
	task     Task
	state    cellState
	worker   string    // lease owner while leased
	deadline time.Time // lease expiry while leased
	attempts int       // failure reports consumed (steals don't count)
	requires string    // gating cell label ("" = none)
	payload  []byte    // canonical measure bytes once done
	errMsg   string    // terminal failure message

	doneBy      string        // worker whose bytes were accepted
	audited     bool          // payload survived fingerprint verification
	auditRounds int           // audit grants consumed (bounded by maxAuditGrants)
	reports     []auditReport // fingerprint votes while in audit states
}

// run is one campaign in flight.
type run struct {
	id        string
	camp      core.Campaign
	spec      []byte // campaignWire JSON served to workers
	cells     map[string]*cell
	order     []string // deterministic scheduling/assembly order
	remaining int      // cells not yet terminal (done/failed)
	frag      *fragmentWriter
	failErr   error // first fatal error (fail-fast mode)
	finished  bool
	done      chan struct{}
}

// NewCoordinator builds a coordinator and its HTTP routes.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.Lease <= 0 {
		cfg.Lease = 15 * time.Second
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 250 * time.Millisecond
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	c := &Coordinator{
		cfg:     cfg,
		reg:     cfg.Registry,
		workers: map[string]*workerState{},
		runs:    map[string]*run{},
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /v1/fabric/workers", c.handleRegister)
	c.mux.HandleFunc("POST /v1/fabric/poll", c.handlePoll)
	c.mux.HandleFunc("POST /v1/fabric/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("POST /v1/fabric/done", c.handleDone)
	c.mux.HandleFunc("GET /v1/fabric/status", c.handleStatus)
	c.mux.HandleFunc("GET /v1/fabric/campaigns/{id}", c.handleCampaign)
	if cfg.Store != nil {
		c.mux.Handle("/v1/artifacts/", artifact.NewServer(cfg.Store))
	}
	return c
}

// Handler returns the coordinator's HTTP handler. It serves everything
// under /v1/fabric/ plus — with a Store — the remote artifact store under
// /v1/artifacts/; mount both prefixes on the daemon's mux.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// SetDrainCheck installs the liveness gate for /v1/fabric/status: while
// fn reports true the endpoint answers 503 + Retry-After instead of a
// status body (cmd/boomd wires the serve.Server's Draining here).
func (c *Coordinator) SetDrainCheck(fn func() bool) {
	c.mu.Lock()
	c.drain = fn
	c.mu.Unlock()
}

// LiveWorkers counts workers seen within the liveness window (three
// lease intervals).
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveWorkersLocked(time.Now())
}

func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	n := 0
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= 3*c.cfg.Lease {
			n++
		}
	}
	return n
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.cfg.Log != nil {
		c.cfg.Log(format, args...)
	}
}

func (c *Coordinator) count(name string) {
	if c.reg != nil {
		c.reg.Counter(name).Inc()
	}
}

// RunCampaign distributes one campaign across the registered workers and
// blocks until every cell is terminal (or ctx is canceled). It has the
// exact signature of serve.Config.Distribute. With no live workers the
// campaign runs on the local Runner instead — a coordinator with an empty
// cluster degrades to a single node, byte-identically. Error semantics
// mirror Runner.Sweep: fail-fast returns (nil, err) on the first
// exhausted cell; KeepGoing returns the partial Sweep together with a
// *core.SweepErrors.
func (c *Coordinator) RunCampaign(ctx context.Context, id string, camp core.Campaign, local *core.Runner) (*core.Sweep, error) {
	if c.LiveWorkers() == 0 && local != nil {
		c.count("fabric.local_fallback")
		c.logf("campaign %s: no live workers, running locally", short(id))
		return local.Sweep(ctx, camp)
	}
	r, err := c.admit(id, camp)
	if err != nil {
		return nil, err
	}
	defer c.retire(id)
	c.logf("campaign %s: %d cell(s) across %d live worker(s)",
		short(id), len(r.order), c.LiveWorkers())
	select {
	case <-r.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return c.assemble(r)
}

// admit builds the cell graph for one campaign, replays a matching
// journal fragment under Resume, and registers the run with the
// scheduler.
func (c *Coordinator) admit(id string, camp core.Campaign) (*run, error) {
	if err := camp.Validate(); err != nil {
		return nil, err
	}
	spec, err := json.Marshal(encodeCampaign(camp))
	if err != nil {
		return nil, err
	}
	r := &run{
		id:    id,
		camp:  camp,
		spec:  spec,
		cells: map[string]*cell{},
		done:  make(chan struct{}),
	}
	for _, wl := range camp.Workloads {
		t := Task{Campaign: id, Kind: taskProfile, Workload: wl}
		r.cells[t.Label()] = &cell{task: t}
		r.order = append(r.order, t.Label())
	}
	for _, cfg := range camp.Configs {
		for _, wl := range camp.Workloads {
			t := Task{Campaign: id, Kind: taskMeasure, Workload: wl, Config: cfg.Name}
			r.cells[t.Label()] = &cell{task: t, requires: taskProfile + "/" + wl}
			r.order = append(r.order, t.Label())
		}
	}
	r.remaining = len(r.order)

	resumed := 0
	if c.cfg.Resume && c.cfg.JournalDir != "" {
		for label, payload := range MergeJournals(id, FragmentPath(c.cfg.JournalDir, id)) {
			cl := r.cells[label]
			if cl == nil || cl.state != cellPending {
				continue
			}
			if cl.task.Kind == taskMeasure && len(payload) == 0 {
				continue // a measure cell without its payload is not done
			}
			cl.state = cellDone
			cl.payload = payload
			r.remaining--
			resumed++
		}
		if resumed > 0 {
			if c.reg != nil {
				c.reg.Counter("fabric.cells_resumed").Add(int64(resumed))
			}
			c.logf("campaign %s: resumed %d cell(s) from journal fragment", short(id), resumed)
		}
	}
	if c.cfg.JournalDir != "" {
		r.frag = openFragment(FragmentPath(c.cfg.JournalDir, id), id, resumed > 0, c.cfg.Log)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.runs[id] != nil {
		r.frag.Close()
		return nil, fmt.Errorf("fabric: campaign %s already running", short(id))
	}
	c.runs[id] = r
	c.runOrder = append(c.runOrder, id)
	if r.remaining == 0 {
		c.finishLocked(r)
	}
	return r, nil
}

// retire removes a finished (or abandoned) run from the scheduler. Late
// reports for a retired campaign are acknowledged and dropped — the
// journal fragment already has everything that completed.
func (c *Coordinator) retire(id string) {
	c.mu.Lock()
	r := c.runs[id]
	delete(c.runs, id)
	for i, rid := range c.runOrder {
		if rid == id {
			c.runOrder = append(c.runOrder[:i], c.runOrder[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	if r != nil {
		r.frag.Close()
	}
}

// nextTask grants the first runnable cell to worker, stamping a fresh
// lease. Expired leases across every run are reclaimed first, so a
// stalled worker's cells become grantable the moment anyone polls.
// Quarantined workers are granted nothing; cells held for audit are
// granted — as Fresh re-executions — ahead of pending work, since they
// gate campaign completion.
func (c *Coordinator) nextTask(worker string) *Task {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLeasesLocked(now)
	if ws := c.workers[worker]; ws != nil && ws.quarantined {
		return nil
	}
	for _, rid := range c.runOrder {
		r := c.runs[rid]
		if r.finished {
			continue
		}
		for _, label := range r.order {
			cl := r.cells[label]
			switch cl.state {
			case cellAuditWait:
				if t := c.grantAuditLocked(r, cl, worker, now); t != nil {
					return t
				}
				continue
			case cellPending:
				// fall through to the normal grant below
			default:
				continue
			}
			if cl.requires != "" {
				switch req := r.cells[cl.requires]; req.state {
				case cellDone:
					// runnable
				case cellFailed:
					c.failCellLocked(r, cl, fmt.Sprintf("dependency %s failed", cl.requires))
					continue
				default:
					continue // profile still pending or in flight
				}
			}
			c.seq++
			cl.state = cellLeased
			cl.worker = worker
			cl.deadline = now.Add(c.cfg.Lease)
			cl.task.Seq = c.seq
			t := cl.task
			c.count("fabric.cells_leased")
			return &t
		}
	}
	return nil
}

// expireLeasesLocked steals cells back from workers whose lease lapsed.
// An expired audit lease returns to the audit queue, not the pending
// queue — the original result is still held for verification.
func (c *Coordinator) expireLeasesLocked(now time.Time) {
	for _, rid := range c.runOrder {
		r := c.runs[rid]
		if r.finished {
			continue
		}
		for _, label := range r.order {
			cl := r.cells[label]
			switch cl.state {
			case cellLeased:
				if now.After(cl.deadline) {
					c.logf("campaign %s: stealing %s from silent worker %s",
						short(r.id), label, cl.worker)
					cl.state = cellPending
					cl.worker = ""
					c.count("fabric.cells_stolen")
				}
			case cellAuditLeased:
				if now.After(cl.deadline) {
					c.logf("campaign %s: stealing audit of %s from silent worker %s",
						short(r.id), label, cl.worker)
					cl.state = cellAuditWait
					cl.worker = ""
					c.count("fabric.cells_stolen")
				}
			}
		}
	}
}

// failCellLocked marks a cell terminally failed and cascades to pending
// dependents (a measure cell can never run without its profile).
func (c *Coordinator) failCellLocked(r *run, cl *cell, msg string) {
	cl.state = cellFailed
	cl.errMsg = msg
	cl.worker = ""
	r.remaining--
	c.count("fabric.cells_failed")
	if cl.task.Kind == taskProfile {
		for _, label := range r.order {
			dep := r.cells[label]
			if dep.state == cellPending && dep.requires == cl.task.Label() {
				dep.state = cellFailed
				dep.errMsg = fmt.Sprintf("dependency %s failed", cl.task.Label())
				r.remaining--
				c.count("fabric.cells_failed")
			}
		}
	}
	if !c.cfg.KeepGoing && r.failErr == nil {
		r.failErr = fmt.Errorf("fabric: cell %s failed after %d attempt(s): %s",
			cl.task.Label(), cl.attempts, msg)
		c.finishLocked(r)
		return
	}
	if r.remaining == 0 {
		c.finishLocked(r)
	}
}

func (c *Coordinator) finishLocked(r *run) {
	if !r.finished {
		r.finished = true
		close(r.done)
	}
}

// assemble merges a finished run's cells into the Sweep a single node
// would have produced. Profiles are intentionally absent (the encoding
// never consumes them — DESIGN §12's wall-clock-free contract); Results
// decode from each measure cell's canonical payload, which IS the bytes
// the measure artifact holds, so the merge cannot introduce drift.
func (c *Coordinator) assemble(r *run) (*core.Sweep, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw := &core.Sweep{
		Flow:        core.FlowConfigFor(r.camp.Scale),
		Scale:       r.camp.Scale,
		Sampling:    r.camp.Sampling,
		Names:       append([]string(nil), r.camp.Workloads...),
		ConfigNames: r.camp.ConfigNames(),
		Profiles:    map[string]*core.Profile{},
		Results:     map[string]map[string]*core.Result{},
	}
	for _, name := range sw.ConfigNames {
		sw.Results[name] = map[string]*core.Result{}
	}
	var errs []error
	for _, label := range r.order {
		cl := r.cells[label]
		switch cl.state {
		case cellDone:
			if cl.task.Kind != taskMeasure {
				continue
			}
			res := &core.Result{
				Workload:   cl.task.Workload,
				ConfigName: cl.task.Config,
				Mode:       "simpoint",
			}
			if err := core.DecodeMeasuredResult(cl.payload, res); err != nil {
				errs = append(errs, fmt.Errorf("fabric: decoding %s: %w", label, err))
				continue
			}
			sw.Results[cl.task.Config][cl.task.Workload] = res
		case cellFailed:
			errs = append(errs, fmt.Errorf("fabric: cell %s: %s", label, cl.errMsg))
		}
	}
	if r.failErr != nil && !c.cfg.KeepGoing {
		return nil, r.failErr
	}
	if len(errs) > 0 {
		return sw, &core.SweepErrors{Errs: errs}
	}
	return sw, nil
}

// short abbreviates a campaign fingerprint for log lines.
func short(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// sortedWorkersLocked snapshots worker rows for the status endpoint.
func (c *Coordinator) sortedWorkersLocked(now time.Time) []WorkerStatus {
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerStatus{
			ID:          w.id,
			Live:        now.Sub(w.lastSeen) <= 3*c.cfg.Lease,
			CellsDone:   w.cellsDone,
			LastSeenMS:  now.Sub(w.lastSeen).Milliseconds(),
			Quarantined: w.quarantined,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
