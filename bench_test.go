// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (run e.g. `go test -bench Fig10 -benchtime 1x`), plus
// microbenchmarks of every substrate. The figure benches print the
// regenerated artifact once and report the headline metric; absolute
// throughput numbers (ns/op) measure this implementation, not the paper's
// testbed.
package repro_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/asap7"
	"repro/internal/asm"
	"repro/internal/bbv"
	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/simpoint"
	"repro/internal/workloads"
)

// ---- shared sweep (computed once; benchmark iterations render from it) ----

var (
	sweepOnce sync.Once
	sweepVal  *core.Sweep
	sweepErr  error

	printOnce sync.Map
)

func benchSweep(b *testing.B) *core.Sweep {
	b.Helper()
	sweepOnce.Do(func() {
		sweepVal, sweepErr = core.New(core.FlowConfigFor(workloads.ScaleTiny), core.WithScale(workloads.ScaleTiny)).
			Sweep(context.Background(), core.NewCampaign(workloads.Names(), boom.Configs(), workloads.ScaleTiny))
	})
	if sweepErr != nil {
		b.Fatal(sweepErr)
	}
	return sweepVal
}

// show prints a table once per process (so -bench=. output contains each
// artifact exactly once).
func show(key string, t *report.Table) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println(t.Render())
	}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := report.TableI(boom.Configs())
		show("table1", t)
	}
}

func BenchmarkTableII(b *testing.B) {
	sw := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		show("table2", report.TableII(sw))
	}
}

func benchFig(b *testing.B, key string, build func(*core.Sweep) *report.Table) {
	sw := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		show(key, build(sw))
	}
}

func BenchmarkFig5(b *testing.B) {
	benchFig(b, "fig5", func(sw *core.Sweep) *report.Table {
		return report.FigComponentPower(sw, "MediumBOOM")
	})
}

func BenchmarkFig6(b *testing.B) {
	benchFig(b, "fig6", func(sw *core.Sweep) *report.Table {
		return report.FigComponentPower(sw, "LargeBOOM")
	})
}

func BenchmarkFig7(b *testing.B) {
	benchFig(b, "fig7", func(sw *core.Sweep) *report.Table {
		return report.FigComponentPower(sw, "MegaBOOM")
	})
}

func BenchmarkFig8(b *testing.B) {
	benchFig(b, "fig8", func(sw *core.Sweep) *report.Table {
		return report.FigSlotPower(sw, "MegaBOOM", "dijkstra", "sha")
	})
}

func BenchmarkFig9(b *testing.B) {
	benchFig(b, "fig9", report.FigContribution)
}

func BenchmarkFig10(b *testing.B) {
	sw := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		show("fig10", report.FigIPC(sw))
	}
	b.ReportMetric(sw.Results["MegaBOOM"]["sha"].IPC(), "sha-mega-IPC")
	b.ReportMetric(sw.Results["MegaBOOM"]["tarfind"].IPC(), "tarfind-mega-IPC")
}

func BenchmarkFig11(b *testing.B) {
	sw := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		show("fig11", report.FigPerfPerWatt(sw))
	}
	med := sw.Results["MediumBOOM"]
	mega := sw.Results["MegaBOOM"]
	var medSum, megaSum float64
	for _, n := range workloads.Names() {
		medSum += med[n].PerfPerWatt()
		megaSum += mega[n].PerfPerWatt()
	}
	b.ReportMetric(medSum/megaSum, "medium-vs-mega-perf/W")
}

func BenchmarkSimPointSpeedup(b *testing.B) {
	sw := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		show("speedup", report.SpeedupTable(sw))
	}
	sp := sw.SpeedupOf()
	b.ReportMetric(sp.Speedup(), "reduction-x")
}

func BenchmarkSimPointAccuracy(b *testing.B) {
	var acc *core.Accuracy
	var err error
	for i := 0; i < b.N; i++ {
		acc, err = core.New(core.DefaultFlowConfig(), core.WithScale(workloads.ScaleTiny)).
			Validate(context.Background(), "bitcount", boom.LargeBOOM())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(math.Abs(acc.ErrorPct()), "IPC-error-%")
}

// BenchmarkAblationTAGEvsGShare measures the Key-Takeaway-#7 ablation.
func BenchmarkAblationTAGEvsGShare(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		tage := bpPower(b, boom.LargeBOOM())
		gcfg := boom.LargeBOOM()
		gcfg.Predictor = boom.PredictorGShare
		ratio = tage / bpPower(b, gcfg)
	}
	b.ReportMetric(ratio, "TAGE/GShare-power")
}

func bpPower(b *testing.B, cfg boom.Config) float64 {
	b.Helper()
	st := runTiming(b, "dijkstra", cfg)
	rep, err := power.NewEstimator(cfg, asap7.Default()).Estimate(st)
	if err != nil {
		b.Fatal(err)
	}
	return rep.Comp[boom.CompBranchPredictor].TotalMW()
}

func runTiming(b *testing.B, name string, cfg boom.Config) *boom.Stats {
	b.Helper()
	w, err := workloads.Build(name, workloads.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	cpu, err := w.NewCPU()
	if err != nil {
		b.Fatal(err)
	}
	c, err := boom.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Run(func(r *sim.Retired) bool {
		if cpu.Halted {
			return false
		}
		if err := cpu.Step(r); err != nil {
			panic(err)
		}
		return true
	}, math.MaxUint64); err != nil {
		b.Fatal(err)
	}
	return c.Stats()
}

// ---- substrate microbenchmarks ----

// BenchmarkFunctionalSim measures functional-simulator throughput.
func BenchmarkFunctionalSim(b *testing.B) {
	w, err := workloads.Build("sha", workloads.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var insts int64
	for i := 0; i < b.N; i++ {
		cpu, err := w.NewCPU()
		if err != nil {
			b.Fatal(err)
		}
		n, err := cpu.Run(-1)
		if err != nil {
			b.Fatal(err)
		}
		insts += n
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkTimingModel measures cycle-model throughput.
func BenchmarkTimingModel(b *testing.B) {
	w, err := workloads.Build("sha", workloads.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	cfg := boom.LargeBOOM()
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cpu, err := w.NewCPU()
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		c, err := boom.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		n, err := c.Run(func(r *sim.Retired) bool {
			if cpu.Halted {
				return false
			}
			if err := cpu.Step(r); err != nil {
				panic(err)
			}
			return true
		}, math.MaxUint64)
		if err != nil {
			b.Fatal(err)
		}
		insts += n
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkAssembler measures toolchain throughput.
func BenchmarkAssembler(b *testing.B) {
	w, err := workloads.Build("sha", workloads.ScaleTiny) // largest source (unrolled rounds)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble(w.Source); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBBVProfiling measures profiling overhead on the functional path.
func BenchmarkBBVProfiling(b *testing.B) {
	w, err := workloads.Build("bitcount", workloads.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu, err := w.NewCPU()
		if err != nil {
			b.Fatal(err)
		}
		p := bbv.NewProfiler(w.IntervalSize)
		if _, err := cpu.RunTrace(-1, p.Observe); err != nil {
			b.Fatal(err)
		}
		p.Finish()
	}
}

// BenchmarkSimPointClustering measures k-means+BIC selection.
func BenchmarkSimPointClustering(b *testing.B) {
	vecs := make([]bbv.Vector, 200)
	for i := range vecs {
		phase := i / 50
		vecs[i] = bbv.Vector{phase*8 + 1: 700, phase*8 + 2: 300}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simpoint.Choose(vecs, simpoint.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPowerEstimate measures the Joules-style estimation step alone.
func BenchmarkPowerEstimate(b *testing.B) {
	cfg := boom.MegaBOOM()
	st := runTiming(b, "bitcount", cfg)
	est := power.NewEstimator(cfg, asap7.Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(st); err != nil {
			b.Fatal(err)
		}
	}
}
